"""Frozen, array-native CSR view of the bipartite RF-signal graph.

Every stage of the FIS-ONE pipeline — RSS-weighted random walks, attention-
biased neighbour sampling, degree^{3/4} negative sampling, GNN aggregation,
the dense baselines, and the serving layer — reads the same bipartite
MAC–sample graph.  :class:`CSRGraph` is the shared, immutable core they all
consume: the adjacency lives in three flat arrays

* ``indptr``  — ``(num_nodes + 1,)`` int64 row pointers,
* ``indices`` — ``(2 * num_edges,)`` int64 neighbour ids,
* ``weights`` — ``(2 * num_edges,)`` float64 edge weights ``f(RSS)``,

plus a node-kind table (MAC vs sample partition) and a node-key table (MAC
address or record id per dense node id).  Node ids are identical to the ones
the mutable :class:`~repro.graph.bipartite.BipartiteGraph` builder assigns —
sample node of record ``i`` before that record's first-seen MACs — so the
two representations are interchangeable and freezing is a pure speedup.

The frozen graph also owns the *shared* alias tables
(:meth:`CSRGraph.alias_tables`): walk generation, neighbour sampling and the
no-attention ablation all draw from the same lazily-built, cached
:class:`~repro.graph.alias.AliasTables`, instead of each consumer re-scanning
the graph and duplicating the Vose construction.

Build one directly from a dataset with :meth:`CSRGraph.from_dataset`
(vectorised assembly, no per-reading graph mutation), or freeze a mutable
builder with :meth:`BipartiteGraph.freeze`.  :meth:`CSRGraph.thaw` goes the
other way, producing a mutable builder that supports ``add_record`` — the
warm-start path the serving layer uses after loading persisted CSR arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.alias import AliasTables
from repro.graph.bipartite import (
    RSS_OFFSET_DB,
    GraphNode,
    NodeKind,
)
from repro.signals.batch import RecordBatch
from repro.signals.dataset import SignalDataset

#: Integer codes of the two partitions inside :attr:`CSRGraph.kinds`.
MAC_KIND = 0
SAMPLE_KIND = 1

_KIND_BY_CODE = {MAC_KIND: NodeKind.MAC, SAMPLE_KIND: NodeKind.SAMPLE}
_CODE_BY_KIND = {NodeKind.MAC: MAC_KIND, NodeKind.SAMPLE: SAMPLE_KIND}


class _FirstSeenCodes(Dict[str, int]):
    """Interning dict: ``d[key]`` returns the key's first-seen-order code.

    Lookups of already-seen keys never leave the C dict fast path; a miss
    assigns ``len(self)`` via ``__missing__``.  Iteration order is insertion
    (first-seen) order, matching the codes.
    """

    def __missing__(self, key: str) -> int:
        self[key] = value = len(self)
        return value


class CSRGraph:
    """Immutable CSR-backed bipartite MAC–sample graph.

    Attributes
    ----------
    indptr, indices, weights:
        The CSR arrays; node ``i``'s neighbours are
        ``indices[indptr[i]:indptr[i+1]]`` with matching ``weights``.
        Neighbour order within a node equals the edge insertion order of the
        mutable builder (reading order for sample nodes, record order for
        MAC nodes).
    kinds:
        ``(num_nodes,)`` uint8 partition codes (:data:`MAC_KIND` /
        :data:`SAMPLE_KIND`).
    keys:
        ``(num_nodes,)`` object array of node keys — the MAC address for MAC
        nodes, the record id for sample nodes.
    mac_ids, sample_ids:
        Cached int64 id arrays of each partition, in insertion (= dense id)
        order.  These are the graph's own arrays — do not mutate them.
    offset_db:
        The edge-weight offset ``c`` of ``f(RSS) = RSS + c``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        kinds: np.ndarray,
        keys: Sequence[str],
        offset_db: float = RSS_OFFSET_DB,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.kinds = np.ascontiguousarray(kinds, dtype=np.uint8)
        self.keys = np.asarray(keys, dtype=object)
        self.offset_db = float(offset_db)

        num_nodes = self.kinds.shape[0]
        if self.indptr.shape != (num_nodes + 1,):
            raise ValueError(
                f"indptr must have {num_nodes + 1} entries, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.weights.shape:
            raise ValueError("indices and weights must have the same length")
        if self.keys.shape != (num_nodes,):
            raise ValueError(f"keys must have {num_nodes} entries, got {self.keys.shape}")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= num_nodes
        ):
            raise ValueError("indices contain out-of-range node ids")
        # Every consumer (alias tables in particular) relies on strictly
        # positive edge weights; validate here so graphs deserialized from
        # corrupt artifacts fail fast instead of sampling from a poisoned
        # distribution.
        if self.weights.size and self.weights.min() <= 0:
            raise ValueError("edge weights must be strictly positive")

        self._degrees = np.diff(self.indptr)
        self.mac_ids = np.flatnonzero(self.kinds == MAC_KIND).astype(np.int64)
        self.sample_ids = np.flatnonzero(self.kinds == SAMPLE_KIND).astype(np.int64)
        self._id_by_key: Optional[Dict[Tuple[NodeKind, str], int]] = None
        self._edge_src: Optional[np.ndarray] = None
        self._alias_tables: Dict[bool, AliasTables] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dataset(
        cls, dataset: SignalDataset, offset_db: float = RSS_OFFSET_DB
    ) -> "CSRGraph":
        """Build the frozen graph of a whole dataset with vectorised assembly.

        One pass extracts the flat ``(record, MAC, RSS)`` triples; node-id
        assignment, both CSR halves, and the partition/key tables are then
        pure NumPy.  The resulting graph is identical — node ids, neighbour
        order, and weights — to ``BipartiteGraph.from_dataset(...).freeze()``.
        """
        num_records = len(dataset)
        record_ids = dataset.record_ids
        counts = np.empty(num_records, dtype=np.int64)
        # One flat extraction pass: MAC keys and RSS values flow out through
        # C-speed ``list.extend`` calls; the per-reading Python work is gone.
        # Everything after this pass is NumPy (shared with the columnar
        # ``from_batch`` constructor).
        flat_macs: List[str] = []
        rss_list: List[float] = []
        for position, record in enumerate(dataset):
            readings = record.readings
            counts[position] = len(readings)
            flat_macs.extend(readings)
            rss_list.extend(readings.values())
        # First-seen-order codes (insertion order of a dict, exactly the
        # order the mutable builder assigns MAC node ids in): dict hits stay
        # inside the C ``__getitem__`` fast path, only the one miss per
        # distinct MAC runs ``__missing__``.
        code_of = _FirstSeenCodes()
        total = len(flat_macs)
        codes = np.fromiter(
            map(code_of.__getitem__, flat_macs), dtype=np.int64, count=total
        )
        indptr = np.zeros(num_records + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Codes are assigned in first-seen order, so the running maximum of
        # ``codes + 1`` at any flat position is the number of distinct MACs
        # seen up to and including it.
        new_macs_before = np.zeros(num_records + 1, dtype=np.int64)
        if total:
            distinct_so_far = np.maximum.accumulate(codes + 1)
            nonzero = indptr[1:] > 0
            new_macs_before[1:][nonzero] = distinct_so_far[indptr[1:][nonzero] - 1]
        return cls._assemble(
            record_ids=record_ids,
            counts=counts,
            codes=codes,
            rss=np.asarray(rss_list, dtype=np.float64),
            new_macs_before=new_macs_before,
            unique_macs=np.asarray(list(code_of), dtype=object),
            offset_db=offset_db,
        )

    @classmethod
    def from_batch(
        cls, batch: "RecordBatch", offset_db: float = RSS_OFFSET_DB
    ) -> "CSRGraph":
        """Build the frozen graph straight from a columnar record batch.

        The batch's interned MAC ids are remapped to *first-seen-in-batch*
        codes with pure NumPy (no per-reading dict), so the resulting graph
        is identical — node ids, neighbour order, weights — to
        ``CSRGraph.from_dataset`` over the same records.

        Raises
        ------
        ValueError
            If the batch is empty (a graph needs at least one sample node).
        """
        num_records = len(batch)
        if num_records == 0:
            raise ValueError("cannot build a graph from an empty batch")
        mac_ids = batch.mac_ids
        # Vocab ids -> dense codes in first-appearance order, replicating the
        # insertion order the record-by-record builder would produce.
        unique_ids, first_flat = np.unique(mac_ids, return_index=True)
        first_seen_order = np.argsort(first_flat, kind="stable")
        code_lookup = np.empty(int(unique_ids[-1]) + 1, dtype=np.int64)
        code_lookup[unique_ids[first_seen_order]] = np.arange(
            unique_ids.size, dtype=np.int64
        )
        # Distinct MACs first seen strictly before each record's flat start.
        new_macs_before = np.searchsorted(np.sort(first_flat), batch.indptr)
        return cls._assemble(
            record_ids=batch.record_ids,
            counts=np.asarray(batch.reading_counts, dtype=np.int64),
            codes=code_lookup[mac_ids],
            rss=np.asarray(batch.rss, dtype=np.float64),
            new_macs_before=np.asarray(new_macs_before, dtype=np.int64),
            unique_macs=batch.vocab.macs_at(unique_ids[first_seen_order]),
            offset_db=offset_db,
        )

    @classmethod
    def _assemble(
        cls,
        record_ids: Sequence[str],
        counts: np.ndarray,
        codes: np.ndarray,
        rss: np.ndarray,
        new_macs_before: np.ndarray,
        unique_macs: np.ndarray,
        offset_db: float,
    ) -> "CSRGraph":
        """Shared vectorised CSR assembly over flat (record, MAC-code, RSS) triples.

        ``codes`` hold dense MAC codes in first-seen order, ``counts`` the
        readings per record, ``new_macs_before[i]`` the number of distinct
        MACs first seen before record ``i`` (with the grand total appended).
        """
        num_records = counts.shape[0]
        total = codes.shape[0]
        edge_weights = rss + offset_db
        if edge_weights.size and edge_weights.min() <= 0:
            worst = int(np.argmin(edge_weights))
            raise ValueError(
                f"edge weight f({rss[worst]}) = {edge_weights[worst]} is not "
                "positive; increase the offset"
            )

        # Node-id assignment replicating the mutable builder: the sample node
        # of record i is created before that record's first-seen MACs, so
        # ``sample_id[i] = i + (#MACs first seen before record i)`` and the
        # c-th distinct MAC overall (first seen in record ``first_owner[c]``)
        # gets id ``first_owner[c] + c + 1``.
        num_macs = unique_macs.shape[0]
        mac_codes = np.arange(num_macs, dtype=np.int64)
        first_owner = np.searchsorted(new_macs_before[1:], mac_codes, side="right")
        mac_id_of_code = first_owner + mac_codes + 1
        sample_ids = np.arange(num_records, dtype=np.int64) + new_macs_before[:-1]
        owners = np.repeat(np.arange(num_records, dtype=np.int64), counts)
        starts = np.zeros(num_records, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])

        num_nodes = num_records + num_macs
        kinds = np.empty(num_nodes, dtype=np.uint8)
        keys = np.empty(num_nodes, dtype=object)
        kinds[sample_ids] = SAMPLE_KIND
        keys[sample_ids] = record_ids
        kinds[mac_id_of_code] = MAC_KIND
        keys[mac_id_of_code] = unique_macs

        # Scatter both directed halves straight into CSR position, keeping
        # per-node neighbour order equal to flat (= builder insertion) order.
        # Sample rows hold only sample->mac entries, already grouped by record
        # in flat order; mac rows hold only mac->sample entries, grouped by a
        # stable integer sort of the MAC codes.
        mac_side = mac_id_of_code[codes]
        sample_side = sample_ids[owners]
        degrees = np.zeros(num_nodes, dtype=np.int64)
        degrees[sample_ids] = counts
        code_counts = np.bincount(codes, minlength=num_macs) if total else np.zeros(
            num_macs, dtype=np.int64
        )
        degrees[mac_id_of_code] = code_counts
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(2 * total, dtype=np.int64)
        weights = np.empty(2 * total, dtype=np.float64)
        flat_positions = np.arange(total, dtype=np.int64)
        sample_positions = indptr[sample_side] + (flat_positions - starts[owners])
        indices[sample_positions] = mac_side
        weights[sample_positions] = edge_weights
        by_code = np.argsort(codes, kind="stable")
        group_starts = np.zeros(num_macs, dtype=np.int64)
        np.cumsum(code_counts[:-1], out=group_starts[1:])
        mac_positions = (
            np.repeat(indptr[mac_id_of_code], code_counts)
            + flat_positions
            - np.repeat(group_starts, code_counts)
        )
        indices[mac_positions] = sample_side[by_code]
        weights[mac_positions] = edge_weights[by_code]
        return cls(
            indptr=indptr,
            indices=indices,
            weights=weights,
            kinds=kinds,
            keys=keys,
            offset_db=offset_db,
        )

    def freeze(self) -> "CSRGraph":
        """The frozen view of this graph — already frozen, so ``self``."""
        return self

    def without_caches(self) -> "CSRGraph":
        """A fresh view over the same arrays with no derived caches.

        Alias tables and the edge-source expansion can dwarf the CSR arrays
        themselves (padded to the max degree); long-lived holders such as a
        fitted serving model keep this cache-free view so training-time
        caches do not pin memory for samplers that never run again.
        """
        return CSRGraph(
            indptr=self.indptr,
            indices=self.indices,
            weights=self.weights,
            kinds=self.kinds,
            keys=self.keys,
            offset_db=self.offset_db,
        )

    def thaw(self) -> "BipartiteGraph":
        """A mutable :class:`BipartiteGraph` builder with this graph's state.

        The builder supports ``add_record``/``add_edge``, which is how a
        served building's graph keeps growing as new signals arrive without
        re-parsing the original dataset (warm start); call ``freeze()`` on it
        to get back to the array view.
        """
        from repro.graph.bipartite import BipartiteGraph

        return BipartiteGraph._from_frozen(self)

    # -- accessors ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in both partitions."""
        return int(self.kinds.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of (MAC, sample) edges."""
        return int(self.indices.shape[0]) // 2

    def node(self, node_id: int) -> GraphNode:
        """The node with the given dense id."""
        return GraphNode(
            node_id=int(node_id),
            kind=_KIND_BY_CODE[int(self.kinds[node_id])],
            key=str(self.keys[node_id]),
        )

    def node_id(self, kind: NodeKind, key: str) -> int:
        """Dense id of the node identified by (kind, key).

        Raises
        ------
        KeyError
            If no such node exists.
        """
        if self._id_by_key is None:
            self._id_by_key = {
                (_KIND_BY_CODE[int(code)], str(node_key)): node_id
                for node_id, (code, node_key) in enumerate(zip(self.kinds, self.keys))
            }
        return self._id_by_key[(kind, key)]

    def sample_node_id(self, record_id: str) -> int:
        """Dense id of the sample node for a record id."""
        return self.node_id(NodeKind.SAMPLE, record_id)

    def mac_node_id(self, mac: str) -> int:
        """Dense id of the MAC node for a MAC address."""
        return self.node_id(NodeKind.MAC, mac)

    def neighbors(self, node_id: int) -> List[int]:
        """Neighbor node ids of a node."""
        return self.indices[self.indptr[node_id] : self.indptr[node_id + 1]].tolist()

    def neighbor_weights(self, node_id: int) -> List[float]:
        """Edge weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[node_id] : self.indptr[node_id + 1]].tolist()

    def neighbor_arrays(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbors and weights of a node as NumPy arrays (possibly empty)."""
        start, stop = self.indptr[node_id], self.indptr[node_id + 1]
        return self.indices[start:stop].copy(), self.weights[start:stop].copy()

    def degree(self, node_id: int) -> int:
        """Number of incident edges of a node."""
        return int(self._degrees[node_id])

    def degrees(self) -> np.ndarray:
        """Vector of degrees for all nodes (indexed by dense id)."""
        return self._degrees.copy()

    def edge_weight(self, node_a: int, node_b: int) -> Optional[float]:
        """Weight of the edge between two nodes, or ``None`` when absent."""
        start, stop = self.indptr[node_a], self.indptr[node_a + 1]
        hits = np.flatnonzero(self.indices[start:stop] == node_b)
        if hits.size == 0:
            return None
        return float(self.weights[start + hits[0]])

    def edge_sources(self) -> np.ndarray:
        """Source node id of every CSR entry (cached expansion of ``indptr``).

        The graph's own array — treat it as read-only.
        """
        if self._edge_src is None:
            self._edge_src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), self._degrees
            )
        return self._edge_src

    # -- shared alias tables ----------------------------------------------------

    def alias_tables(self, uniform: bool = False) -> AliasTables:
        """The graph's shared Vose alias tables, built lazily and cached.

        Every consumer that samples neighbours — random walks, GNN neighbour
        sampling — draws from the same table object, so the O(N + E)
        construction happens once per graph (per ``uniform`` flavour), not
        once per consumer.
        """
        uniform = bool(uniform)
        tables = self._alias_tables.get(uniform)
        if tables is None:
            tables = AliasTables.from_csr(
                self.indptr, self.indices, self.weights, uniform=uniform
            )
            self._alias_tables[uniform] = tables
        return tables

    # -- matrix views -----------------------------------------------------------

    def adjacency_matrix(self, normalize: bool = False) -> np.ndarray:
        """Dense (num_nodes x num_nodes) weighted adjacency matrix.

        A single vectorised scatter from the CSR arrays; with ``normalize``
        the symmetrically normalised ``D^{-1/2} (A + I) D^{-1/2}`` used by
        GCN-style baselines is returned.
        """
        matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        matrix[self.edge_sources(), self.indices] = self.weights
        if not normalize:
            return matrix
        with_self_loops = matrix + np.eye(self.num_nodes)
        degree = with_self_loops.sum(axis=1)
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(degree), 0.0)
        return with_self_loops * inv_sqrt[:, None] * inv_sqrt[None, :]

    def sample_feature_matrix(
        self, dataset: Optional[SignalDataset] = None, fill_dbm: float = -120.0
    ) -> np.ndarray:
        """The dense matrix view of Figure 3: samples x MACs, missing = ``fill_dbm``.

        Rows follow sample-node (= dataset record) order, columns follow MAC
        first-seen order.  When ``dataset`` is given, entries hold its raw
        RSS readings bit-exactly (the sample-side CSR edge sequence equals
        the flat reading order, so the scatter needs no per-reading lookup);
        without it the RSS is recovered as ``weight - offset``, which can
        differ from the original reading by float rounding.
        """
        if dataset is not None and len(dataset) != self.sample_ids.size:
            raise ValueError(
                f"dataset has {len(dataset)} records but the graph has "
                f"{self.sample_ids.size} sample nodes"
            )
        row_of = np.zeros(self.num_nodes, dtype=np.int64)
        col_of = np.zeros(self.num_nodes, dtype=np.int64)
        row_of[self.sample_ids] = np.arange(self.sample_ids.size)
        col_of[self.mac_ids] = np.arange(self.mac_ids.size)
        src = self.edge_sources()
        from_sample = self.kinds[src] == SAMPLE_KIND
        if dataset is not None:
            values = np.asarray(
                [rss for record in dataset for rss in record.readings.values()],
                dtype=np.float64,
            )
            reading_counts = np.fromiter(
                (len(record.readings) for record in dataset),
                dtype=np.int64,
                count=len(dataset),
            )
            # The scatter is positional, so guard against a dataset that is
            # not the one this graph was built from: per-record reading
            # counts must equal sample degrees, and every reading must agree
            # with its edge weight (up to the offset round trip) — a
            # reordered or relabeled dataset fails here instead of silently
            # producing a matrix with RSS values in the wrong MAC columns.
            if not np.array_equal(self._degrees[self.sample_ids], reading_counts):
                raise ValueError(
                    "dataset readings do not match the graph's sample edges"
                )
            if not np.allclose(
                values, self.weights[from_sample] - self.offset_db, atol=1e-6
            ):
                raise ValueError(
                    "dataset readings disagree with the graph's edge weights; "
                    "was this graph built from a different dataset?"
                )
        else:
            values = self.weights[from_sample] - self.offset_db
        matrix = np.full(
            (self.sample_ids.size, self.mac_ids.size), fill_dbm, dtype=np.float64
        )
        matrix[row_of[src[from_sample]], col_of[self.indices[from_sample]]] = values
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(macs={self.mac_ids.size}, samples={self.sample_ids.size}, "
            f"edges={self.num_edges})"
        )


#: Either graph representation; consumers freeze to the CSR view internally.
AnyGraph = Union["BipartiteGraph", CSRGraph]
