"""Serving a building fleet: fit once, persist, then label signals online.

This example walks the full serving lifecycle across three simulated
buildings:

1. simulate three buildings and split each into a crowdsourced training
   survey and a stream of later, unseen signals,
2. fit one FIS-ONE model per building through a BuildingRegistry that
   persists every fit as a versioned artifact directory,
3. throw the artifacts' in-memory models away and open a *fresh* registry
   on the same store — models now load from disk, no refit,
4. drive concurrent label requests through the batching FleetServer —
   submitted as columnar :class:`~repro.signals.batch.RecordBatch` payloads
   (one shared MacVocab per building), the array-native fast path — and
   compare online predictions with the withheld ground truth.

Run it with::

    python examples/serving_fleet.py

With ``--workers N`` the serving step runs through the multi-process
:class:`~repro.serving.sharded.ShardedFleetServer` instead: buildings are
consistent-hash partitioned across N worker processes, each of which
mmap-loads its share of the store zero-copy (the default, ``--workers 0``,
serves in-process)::

    python examples/serving_fleet.py --workers 2

With ``--metrics-port P`` a stdlib ``/metrics`` endpoint serves the live
Prometheus exposition while requests are in flight (fleet-merged across the
worker processes in sharded mode; ``P=0`` picks a free port)::

    python examples/serving_fleet.py --workers 2 --metrics-port 9100

``--transport tcp`` swaps the worker pipes for loopback TCP sockets —
labels travel as zero-copy binary frames, and a heartbeat thread fails a
dead shard over by resizing the consistent-hash ring::

    python examples/serving_fleet.py --workers 2 --transport tcp

The transport also crosses real process boundaries.  ``--listen`` turns
one invocation into a standalone shard server (it fits the same simulated
fleet, then serves it over TCP until interrupted), and ``--connect``
points a dispatcher at one or more already-listening shards::

    python examples/serving_fleet.py --listen 127.0.0.1:7071   # terminal 1
    python examples/serving_fleet.py --listen 127.0.0.1:7072   # terminal 2
    python examples/serving_fleet.py --connect 127.0.0.1:7071 \\
        --connect 127.0.0.1:7072                               # terminal 3
"""

from __future__ import annotations

import argparse
import tempfile
import time
import urllib.request

from repro.core import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    BuildingRegistry,
    FleetServer,
    LabelRequest,
    ShardedFleetServer,
    ShardServer,
)
from repro.signals import MacVocab, RecordBatch
from repro.simulate import generate_single_building
from repro.telemetry import MetricsHTTPServer

#: A reduced configuration so the example fits three buildings in seconds.
CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=3,
    max_pairs_per_epoch=15_000,
    inference_passes=2,
    inference_sample_sizes=(30, 15),
)


def start_metrics_endpoint(port, render):
    """Serve ``render`` at ``/metrics`` when a port was asked for."""
    if port is None:
        return None
    endpoint = MetricsHTTPServer(render, port=port).start()
    print(f"\nmetrics endpoint up at {endpoint.url}")
    return endpoint


def scrape_and_stop(endpoint) -> None:
    """One scrape through the real HTTP path, then release the port."""
    if endpoint is None:
        return
    with urllib.request.urlopen(endpoint.url, timeout=10) as response:
        text = response.read().decode("utf-8")
    print("scraped /metrics (excerpt):")
    for line in text.splitlines():
        if line.startswith(
            ("fleet_requests_total", "fleet_records_total", "fleet_inflight_requests")
        ):
            print(f"  {line}")
    endpoint.stop()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for a ShardedFleetServer (0 = in-process "
        "FleetServer, the default)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="P",
        help="serve the live Prometheus exposition at "
        "http://127.0.0.1:P/metrics while requests run (0 picks a free port)",
    )
    parser.add_argument(
        "--transport",
        choices=("pipe", "tcp"),
        default="pipe",
        help="how the dispatcher talks to spawned workers: anonymous pipes "
        "(default) or loopback TCP with binary frames, heartbeats, and "
        "failover",
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="run as a standalone TCP shard server on this address instead "
        "of a dispatcher (fit the simulated fleet, then serve until Ctrl-C)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        action="append",
        default=None,
        help="dispatch to an already-listening shard server (repeat for "
        "several shards; implies --transport tcp)",
    )
    args = parser.parse_args()

    # 1. Three buildings; per building, train on 30 samples/floor and keep
    #    the remaining records as the later "online" traffic.
    fleet = {}
    for index, (num_floors, seed) in enumerate([(3, 21), (4, 11), (5, 7)]):
        labeled = generate_single_building(
            num_floors=num_floors, samples_per_floor=40, seed=seed
        )
        train, stream = labeled.holdout_split(train_per_floor=30)
        fleet[f"building-{index}"] = (train, stream)
        print(
            f"building-{index}: {num_floors} floors, {len(train)} survey samples, "
            f"{len(stream)} online signals held back"
        )

    with tempfile.TemporaryDirectory(prefix="fisone-models-") as store:
        # 2. Fit (lazily) through a write-through registry.  Only the single
        #    anchor label per building is used, as in the paper.
        registry = BuildingRegistry(store_dir=store, capacity=2, config=CONFIG)
        for building_id, (train, _) in fleet.items():
            registry.register(building_id, train)
        for building_id in fleet:
            fitted = registry.get(building_id)
            print(f"fitted {building_id}: final RF-GNN loss "
                  f"{fitted.result.training_history.final_loss:.3f}")
        print(f"registry after fitting: {registry.stats}")

        if args.listen is not None:
            # Standalone shard mode: this process *is* one TCP shard.  A
            # dispatcher started with --connect pointing here drives label
            # traffic over the wire; the simulated fit is deterministic, so
            # every listener serves bit-identical models.
            host, _, port = args.listen.rpartition(":")
            server = ShardServer(
                store, host=host, port=int(port), config=CONFIG, capacity=2
            ).start()
            bound_host, bound_port = server.address
            print(f"\nshard server listening on {bound_host}:{bound_port} "
                  "(Ctrl-C to stop)")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
            return

        # 3. A fresh registry on the same store: every model loads from its
        #    artifact directory, nothing refits.  (In sharded mode each
        #    worker process builds its own registry over the store instead.)
        serving_registry = BuildingRegistry(store_dir=store, capacity=2, config=CONFIG)

        # 4. Serve the held-back signals concurrently, 5 records per request,
        #    as columnar RecordBatch payloads.  One MacVocab per building
        #    keeps MAC ids stable across its requests, so the server can
        #    coalesce concurrent batches by pure array concatenation and the
        #    frozen encoder translates them with one np.take per batch.
        requests = []
        for building_id, (_, stream) in fleet.items():
            vocab = MacVocab()
            for start in range(0, len(stream), 5):
                chunk = stream[start : start + 5]
                requests.append(
                    LabelRequest(
                        request_id=f"{building_id}/req-{start // 5}",
                        building_id=building_id,
                        records=RecordBatch.from_records(
                            [record.without_floor() for record in chunk],
                            vocab=vocab,
                        ),
                    )
                )
        if args.workers > 0 or args.connect:
            if args.connect:
                print(f"\ndispatching over TCP to {len(args.connect)} remote "
                      f"shard server(s): {', '.join(args.connect)}")
            else:
                print(f"\nserving through {args.workers} sharded worker "
                      f"processes ({args.transport} transport, "
                      "consistent-hash routing, zero-copy mmap loads)")
            with ShardedFleetServer(
                store, num_workers=max(args.workers, 1), config=CONFIG,
                shard_capacity=2, batch_window_s=0.005,
                transport=args.transport, shard_addresses=args.connect,
            ) as sharded:
                for building_id in fleet:
                    print(f"  {building_id} -> shard {sharded.shard_for(building_id)}")
                endpoint = start_metrics_endpoint(
                    args.metrics_port, sharded.render_prometheus
                )
                responses = sharded.serve(requests)
                fleet_stats = sharded.stats()
                scrape_and_stop(endpoint)
            stats = fleet_stats  # FleetWideStats shares the printed fields
            loads = sum(shard.registry.loads for shard in fleet_stats.shards)
            refits = sum(shard.registry.fits for shard in fleet_stats.shards)
        else:
            with FleetServer(
                serving_registry, num_workers=4, batch_window_s=0.005
            ) as server:
                endpoint = start_metrics_endpoint(
                    args.metrics_port, server.render_prometheus
                )
                responses = server.serve(requests)
                stats = server.stats()
                scrape_and_stop(endpoint)
            loads = serving_registry.stats.loads
            refits = serving_registry.stats.fits

        truth = {
            record.record_id: record.floor
            for _, (_, stream) in fleet.items()
            for record in stream
        }
        correct = sum(
            int(truth[label.record_id] == label.floor)
            for response in responses
            for label in response.labels
        )
        total = sum(len(response.labels) for response in responses)
        print(f"\nserved {stats.num_requests} requests "
              f"({stats.num_records} records) in {stats.elapsed_s:.2f}s "
              f"-> {stats.records_per_second:.0f} records/s, "
              f"{stats.num_batches} per-building batches")
        print(f"loads from disk: {loads}, refits: {refits}")
        print(f"online floor accuracy vs withheld ground truth: {correct / total:.3f}")


if __name__ == "__main__":
    main()
