"""Live fleet operations: join, drain, replicated failover, autoscaling.

The runbook in ``docs/operations.md``, executed.  A replicated two-shard
TCP fleet boots over a shared artifact store, and then every membership
operation an operator reaches for runs against it *while it serves*:

1. fit four small buildings and persist them through a write-through
   ``BuildingRegistry``,
2. boot a ``ShardedFleetServer`` (spawned TCP workers, ``replication=2``)
   and serve a first wave of label traffic,
3. ``join_shard()`` a third worker under background load — the newcomer
   is warmed before it takes the ~1/N of buildings it steals,
4. SIGKILL the primary of a replicated building — heartbeat-miss
   failover promotes the warm follower, no refit, no cold load,
5. ``drain_shard()`` one shard gracefully — routing stops, buffered
   drift records and hot-model state hand off to the new owners,
6. print the merged fleet event timeline (``shard-joined``,
   ``shard-down``, ``shard-drained``, ...) and the membership counters.

Labels are asserted identical across every step: membership is an
operational concern, never a model concern.

Run it with::

    python examples/fleet_operations.py
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time
from pathlib import Path

from repro.core import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import BuildingRegistry, LabelRequest, ShardedFleetServer
from repro.simulate import generate_single_building

CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)

BUILDINGS = ("hq", "mall", "lab", "depot")


def build_store(store_dir: Path) -> dict:
    """Fit four buildings into one store; return their unlabeled streams."""
    registry = BuildingRegistry(store_dir=store_dir, config=CONFIG, capacity=4)
    streams = {}
    for index, building_id in enumerate(BUILDINGS):
        labeled = generate_single_building(
            num_floors=3, samples_per_floor=25, seed=40 + index
        )
        train, stream = labeled.holdout_split(train_per_floor=18)
        anchor = train.pick_labeled_sample(floor=0)
        observed = train.strip_labels(keep_record_ids=[anchor.record_id])
        registry.register(building_id, observed, anchor_record_id=anchor.record_id)
        registry.get(building_id)  # fit + persist now, not at first request
        streams[building_id] = [record.without_floor() for record in stream]
    return streams


def make_requests(streams: dict, chunk: int = 5) -> list:
    requests = []
    for building_id, stream in streams.items():
        for start in range(0, len(stream), chunk):
            block = stream[start : start + chunk]
            if block:
                requests.append(
                    LabelRequest(
                        request_id=f"req-{len(requests)}",
                        building_id=building_id,
                        records=tuple(block),
                    )
                )
    return requests


def label_map(responses) -> dict:
    # Keyed by request id: record ids are only unique within one building.
    return {
        response.request_id: tuple(
            (label.record_id, label.floor, label.confidence)
            for label in response.labels
        )
        for response in responses
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "models"
        print("== fitting 4 buildings into a shared store ...")
        streams = build_store(store)
        requests = make_requests(streams)

        fleet = ShardedFleetServer(
            store,
            num_workers=2,
            config=CONFIG,
            shard_capacity=4,
            transport="tcp",
            replication=2,
            heartbeat_interval_s=0.2,
            heartbeat_miss_threshold=2,
        )
        with fleet:
            print(f"== booted {fleet.num_live_shards} replicated TCP shards")
            baseline = label_map(fleet.serve(requests))
            num_labels = sum(len(labels) for labels in baseline.values())
            print(f"   served {len(requests)} requests, {num_labels} labels")

            # -- live join under load --------------------------------------
            served_during_join = {}
            pump = threading.Thread(
                target=lambda: served_during_join.update(
                    label_map(fleet.serve(requests))
                )
            )
            pump.start()
            entry = fleet.join_shard()
            pump.join()
            assert served_during_join == baseline, "labels moved across a join"
            print(
                f"== joined shard {entry!r} under load; "
                f"now {fleet.num_live_shards} shards; labels identical"
            )

            # -- replicated failover: SIGKILL a primary --------------------
            building = BUILDINGS[0]
            with fleet._ring_lock:
                primary, follower = fleet._ring.shards_for(building, 2)
            victim = fleet._shard_by_entry[primary]
            print(
                f"== SIGKILL shard {primary!r} "
                f"(primary of {building!r}; warm follower is {follower!r})"
            )
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                with fleet._ring_lock:
                    if primary not in fleet._ring.entries:
                        break
                time.sleep(0.05)
            assert fleet.shard_for(building) == follower
            assert label_map(fleet.serve(requests)) == baseline
            print(
                f"   failover promoted {follower!r}; "
                f"{fleet.num_live_shards} shards; labels identical"
            )

            # -- graceful drain -------------------------------------------
            drainee = fleet.shard_for(BUILDINGS[1])
            summary = fleet.drain_shard(drainee)
            assert label_map(fleet.serve(requests)) == baseline
            print(
                f"== drained shard {summary['entry']!r}: handed off "
                f"{summary['handed_off_records']} buffered records across "
                f"{summary['handed_off_buildings']} buildings; labels identical"
            )

            # -- an autoscaler dry-run ------------------------------------
            from repro.serving import AutoscalePolicy, Autoscaler

            autoscaler = Autoscaler(
                fleet,
                policy=AutoscalePolicy(min_shards=1, max_shards=4),
                interval_s=60.0,
            )
            decision = autoscaler.evaluate_once()
            print(
                f"== autoscaler decision on the idle fleet: {decision.action!r} "
                f"({decision.reason}; pressure={decision.pressure:.2f})"
            )

            # -- the operator's view --------------------------------------
            print("\n== merged fleet event timeline")
            for event in fleet.fleet_events(
                kinds=["shard-joined", "shard-down", "shard-drained"]
            ):
                print(
                    f"   {event.timestamp:12.3f}s  "
                    f"{event.kind:14s} {event.details_dict}"
                )
            exposition = fleet.render_prometheus()
            print("\n== membership counters")
            for line in exposition.splitlines():
                if line.startswith(
                    ("fleet_live_shards", "fleet_membership", "fleet_replica_fanout")
                ):
                    print(f"   {line}")
        print("\nfleet stopped cleanly")


if __name__ == "__main__":
    main()
