"""Floor identification in a shopping mall with an open atrium.

Shopping malls are the hard case the paper highlights: a large central atrium
lets a few access points be heard on *every* floor, so the signal-spillover
structure is noisier than in office buildings.  This example

1. simulates a 7-floor mall (with atrium) and its crowdsourced survey,
2. inspects the spillover statistics (the paper's Figure 1(b) view),
3. runs FIS-ONE with one bottom-floor label, and
4. compares it against the MDS baseline indexed by the same TSP step.

Run it with::

    python examples/mall_floor_identification.py
"""

from __future__ import annotations

from repro.baselines import MDSBaseline
from repro.core import FisOneConfig
from repro.experiments.runner import evaluate_baseline_on_building, evaluate_fis_one_on_building
from repro.experiments.spillover import spillover_by_floor_distance, spillover_histogram
from repro.gnn.model import RFGNNConfig
from repro.simulate import generate_building_dataset, mall_building_config


def main() -> None:
    # 1. A 7-floor shopping mall with a central atrium.
    config = mall_building_config(num_floors=7, samples_per_floor=50, building_id="grand-mall")
    dataset = generate_building_dataset(config, seed=21)
    print(f"Mall survey: {len(dataset)} samples, {len(dataset.macs)} access points, 7 floors")

    # 2. Signal spillover: how many floors does each access point reach?
    histogram = spillover_histogram(dataset)
    print("\nSpillover histogram (MACs per number of floors detected):")
    for floors, count in histogram.items():
        print(f"  {floors} floor(s): {count:3d} " + "#" * count)
    print("Mean shared MACs by floor distance:",
          {distance: round(value, 1)
           for distance, value in spillover_by_floor_distance(dataset).items()})

    # 3. FIS-ONE with a single bottom-floor label.
    fis_config = FisOneConfig(
        gnn=RFGNNConfig(embedding_dim=32, neighbor_sample_sizes=(10, 5)), num_epochs=3
    )
    fis = evaluate_fis_one_on_building(dataset, fis_config)

    # 4. The MDS baseline clustered the paper's way and indexed by the same TSP step.
    mds = evaluate_baseline_on_building(dataset, MDSBaseline(embedding_dim=32), fis_config)

    print("\nMethod     ARI    NMI    EditDist  Accuracy")
    for evaluation in (fis, mds):
        print(
            f"{evaluation.method:9s}  {evaluation.ari:.3f}  {evaluation.nmi:.3f}  "
            f"{evaluation.edit_distance:.3f}     {evaluation.accuracy:.3f}"
        )


if __name__ == "__main__":
    main()
