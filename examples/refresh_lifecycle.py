"""The full refresh lifecycle: fit → serve → drift → refresh → persist.

A deployed FIS-ONE model ages: access points are replaced (new MACs), and
transmit powers shift.  This example walks the loop that keeps a building
fresh without ever paying a full refit:

1. generate an AP-churn / RSS-drift scenario (pre-drift survey + post-drift
   signal wave),
2. fit a model on the survey and persist it through a write-through
   BuildingRegistry,
3. serve the post-drift wave — the per-building DriftMonitor watches the
   unknown-MAC fraction and confidences sag,
4. sweep the fleet with ``FleetServer.refresh_drifted()`` — the drifted
   building is incrementally refreshed (graph growth + warm-start
   fine-tune + label-stable re-clustering) and the refreshed artifact is
   written back with a bumped model version and a lineage entry,
5. compare pre- and post-refresh online accuracy on the drifted wave.

Run it with::

    python examples/refresh_lifecycle.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.core import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    BuildingRegistry,
    DriftThresholds,
    FleetServer,
    RefreshPolicy,
)
from repro.simulate import BuildingConfig, DriftScenarioConfig, generate_drift_scenario
from repro.simulate.collector import CollectionConfig

#: A reduced configuration so the example runs in seconds.
CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=5,
    max_pairs_per_epoch=30_000,
    inference_passes=2,
    inference_sample_sizes=(30, 15),
)


def main() -> None:
    # 1. A 3-floor building; after the survey, half the APs are replaced
    #    with new hardware and every AP shifts +3 dB.
    scenario = generate_drift_scenario(
        DriftScenarioConfig(
            building=BuildingConfig(
                num_floors=3,
                aps_per_floor=12,
                collection=CollectionConfig(
                    samples_per_floor=50, scans_per_contributor=10
                ),
                building_id="hq",
            ),
            churn_fraction=0.5,
            rss_shift_db=3.0,
            post_samples_per_floor=25,
        ),
        seed=1,
    )
    print(
        f"scenario: {len(scenario.initial)} survey records, "
        f"{len(scenario.drifted)} post-drift records, "
        f"{len(scenario.replaced_macs)} APs churned"
    )

    with tempfile.TemporaryDirectory(prefix="fisone-refresh-") as store:
        # 2. Fit through a write-through registry with an eager refresh
        #    policy (low thresholds so the example drifts decisively).
        policy = RefreshPolicy(
            thresholds=DriftThresholds(
                min_records=30,
                max_unknown_mac_fraction=0.15,
                min_mean_confidence=0.0,
            ),
            min_new_records=30,
            fine_tune_epochs=1,
        )
        registry = BuildingRegistry(
            store_dir=store, capacity=4, config=CONFIG, refresh_policy=policy
        )
        registry.register("hq", scenario.initial.strip_labels(
            keep_record_ids=[scenario.initial.pick_labeled_sample(floor=0).record_id]
        ))

        # 3. Serve the drifted wave; the monitor sees the staleness.
        wave = [record.without_floor() for record in scenario.drifted]
        truth = [record.floor for record in scenario.drifted]
        before = registry.label("hq", wave)
        accuracy_before = sum(
            int(label.floor == floor) for label, floor in zip(before, truth)
        ) / len(wave)
        snapshot = registry.drift_snapshot("hq")
        print(
            f"pre-refresh: accuracy {accuracy_before:.3f}, "
            f"known-MAC fraction {snapshot.mean_known_mac_fraction:.3f}, "
            f"drifted={snapshot.drifted} {list(snapshot.reasons)}"
        )

        # 4. Fleet-wide sweep: the drifted building refreshes incrementally.
        server = FleetServer(registry)
        reports = server.refresh_drifted()
        for building_id, report in reports.items():
            print(
                f"refreshed {building_id}: +{report.num_new_records} records, "
                f"+{report.num_new_macs} MACs, {report.fine_tune_epochs} "
                f"fine-tune epochs, label stability "
                f"{report.label_stability:.3f} ({report.floor_mapping_source})"
            )

        # 5. The refreshed generation serves the same wave better — and its
        #    artifact on disk carries the bumped version + lineage.
        after = registry.label("hq", wave)
        accuracy_after = sum(
            int(label.floor == floor) for label, floor in zip(after, truth)
        ) / len(wave)
        manifest = json.loads(
            (Path(store) / "hq" / "manifest.json").read_text()
        )
        print(f"post-refresh: accuracy {accuracy_after:.3f}")
        print(
            f"persisted model_version={manifest['model_version']}, "
            f"lineage={manifest['lineage']}"
        )


if __name__ == "__main__":
    main()
