"""The guarded refresh lifecycle: fit → serve → drift → refresh → persist,
with canary validation, artifact history, and rollback.

A deployed FIS-ONE model ages: access points are replaced (new MACs), and
transmit powers shift.  This example walks the loop that keeps a building
fresh without ever paying a full refit — and the guard rails around it,
because crowdsourced refresh material is not curated:

1. generate an AP-churn / RSS-drift scenario (pre-drift survey + post-drift
   signal wave),
2. fit a model on the survey and persist it through a write-through
   BuildingRegistry with ``keep_generations`` so superseded artifact
   generations stay on disk,
3. serve the post-drift wave — the per-building DriftMonitor watches the
   unknown-MAC fraction and confidences sag,
4. sweep the fleet with ``FleetServer.refresh_drifted()`` — the drifted
   building is incrementally refreshed (graph growth + warm-start
   fine-tune + label-stable re-clustering), the candidate passes the
   canary gate, and the artifact is written back into a new versioned
   generation with a bumped model version and a lineage entry,
5. compare pre- and post-refresh online accuracy on the drifted wave,
6. feed the registry a *poisoned* wave (scrambled MAC/RSS readings, as a
   buggy firmware rollout or a data-poisoning batch would produce) — the
   canary scores the candidate on held-back honest traffic, rejects it
   with ``RefreshRejectedError``, and the serving model stays untouched,
7. force the bad refresh through anyway (the operator override), watch
   accuracy collapse,
8. ``registry.rollback()`` — the ``CURRENT`` pointer swaps back to the
   previous retained generation and serving output is restored
   bit-identically.

Run it with::

    python examples/refresh_lifecycle.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.core import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    BuildingRegistry,
    DriftThresholds,
    FleetServer,
    RefreshPolicy,
    RefreshRejectedError,
    current_version,
)
from repro.simulate import (
    BuildingConfig,
    DriftScenarioConfig,
    generate_drift_scenario,
    scramble_records,
)
from repro.simulate.collector import CollectionConfig

#: A reduced configuration so the example runs in seconds.
CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=5,
    max_pairs_per_epoch=30_000,
    inference_passes=2,
    inference_sample_sizes=(30, 15),
)


def wave_accuracy(registry: BuildingRegistry, wave, truth) -> float:
    labels = registry.label("hq", wave)
    return sum(
        int(label.floor == floor) for label, floor in zip(labels, truth)
    ) / len(wave)


def main() -> None:
    # 1. A 3-floor building; after the survey, half the APs are replaced
    #    with new hardware and every AP shifts +3 dB.
    scenario = generate_drift_scenario(
        DriftScenarioConfig(
            building=BuildingConfig(
                num_floors=3,
                aps_per_floor=12,
                collection=CollectionConfig(
                    samples_per_floor=50, scans_per_contributor=10
                ),
                building_id="hq",
            ),
            churn_fraction=0.5,
            rss_shift_db=3.0,
            post_samples_per_floor=25,
        ),
        seed=1,
    )
    print(
        f"scenario: {len(scenario.initial)} survey records, "
        f"{len(scenario.drifted)} post-drift records, "
        f"{len(scenario.replaced_macs)} APs churned"
    )

    with tempfile.TemporaryDirectory(prefix="fisone-refresh-") as store:
        # 2. Fit through a write-through registry with an eager refresh
        #    policy (low thresholds so the example drifts decisively) and
        #    versioned artifact retention, so bad generations can be undone.
        policy = RefreshPolicy(
            thresholds=DriftThresholds(
                min_records=30,
                max_unknown_mac_fraction=0.15,
                min_mean_confidence=0.0,
            ),
            min_new_records=30,
            fine_tune_epochs=3,
        )
        registry = BuildingRegistry(
            store_dir=store,
            capacity=4,
            config=CONFIG,
            refresh_policy=policy,
            keep_generations=3,
        )
        registry.register("hq", scenario.initial.strip_labels(
            keep_record_ids=[scenario.initial.pick_labeled_sample(floor=0).record_id]
        ))

        # 3. Serve the drifted wave; the monitor sees the staleness.
        wave = [record.without_floor() for record in scenario.drifted]
        truth = [record.floor for record in scenario.drifted]
        accuracy_before = wave_accuracy(registry, wave, truth)
        snapshot = registry.drift_snapshot("hq")
        print(
            f"pre-refresh: accuracy {accuracy_before:.3f}, "
            f"known-MAC fraction {snapshot.mean_known_mac_fraction:.3f}, "
            f"drifted={snapshot.drifted} {list(snapshot.reasons)}"
        )

        # 4. Fleet-wide sweep: the drifted building refreshes incrementally.
        #    The canary gate (RefreshPolicy.canary, on by default) holds back
        #    the most recent slice of the wave and scores the candidate on it
        #    before the swap — this honest refresh passes.
        server = FleetServer(registry)
        reports = server.refresh_drifted()
        for building_id, report in reports.items():
            print(
                f"refreshed {building_id}: +{report.num_new_records} records, "
                f"+{report.num_new_macs} MACs, {report.fine_tune_epochs} "
                f"fine-tune epochs, label stability "
                f"{report.label_stability:.3f} ({report.floor_mapping_source})"
            )

        # 5. The refreshed generation serves the same wave better — and its
        #    artifact lands in a per-version subdirectory with the bumped
        #    version + lineage, next to the retained parent generation.
        accuracy_after = wave_accuracy(registry, wave, truth)
        version = current_version(Path(store) / "hq")
        manifest = json.loads(
            (Path(store) / "hq" / f"v{version}" / "manifest.json").read_text()
        )
        print(f"post-refresh: accuracy {accuracy_after:.3f}")
        print(
            f"persisted model_version={manifest['model_version']}, "
            f"lineage={manifest['lineage']}, "
            f"retained generations={registry.retained_versions('hq')}"
        )

        # 6. A poisoned wave arrives: the body of the traffic is scrambled
        #    (each record's readings resampled from the whole building with
        #    noise — floor structure destroyed, vocabulary intact), but the
        #    freshest slice is still honest.  The canary holds that slice
        #    back, trains the candidate on the garbage, scores it on the
        #    honest window, and rejects the refresh.  Serving is untouched.
        holdout = max(8, len(wave) // 4)
        poisoned = scramble_records(wave[:-holdout], seed=23) + wave[-holdout:]
        labels_before_attempt = registry.label("hq", wave)
        try:
            registry.refresh("hq", records=poisoned, fine_tune_epochs=30)
        except RefreshRejectedError as rejected:
            print(f"canary rejected the poisoned refresh: {rejected.reasons}")
        labels_after_attempt = registry.label("hq", wave)
        assert [label.floor for label in labels_before_attempt] == [
            label.floor for label in labels_after_attempt
        ], "a rejected refresh must leave serving output bit-identical"
        print(
            "serving unchanged after rejection: "
            f"accuracy {wave_accuracy(registry, wave, truth):.3f}, "
            f"CURRENT=v{current_version(Path(store) / 'hq')}"
        )

        # 7. An operator forces the bad candidate past the gate anyway.
        registry.refresh("hq", records=poisoned, fine_tune_epochs=30, force=True)
        accuracy_forced = wave_accuracy(registry, wave, truth)
        print(
            f"forced the poisoned refresh through: accuracy "
            f"{accuracy_forced:.3f}, CURRENT=v{current_version(Path(store) / 'hq')}, "
            f"retained generations={registry.retained_versions('hq')}"
        )

        # 8. Rollback: swap CURRENT back to the previous retained generation
        #    and restore the cached model — serving output returns exactly.
        restored = registry.rollback("hq")
        accuracy_restored = wave_accuracy(registry, wave, truth)
        assert accuracy_restored == accuracy_after
        print(
            f"rolled back to model_version={restored.model_version}: accuracy "
            f"{accuracy_restored:.3f}, CURRENT=v{current_version(Path(store) / 'hq')}"
        )


if __name__ == "__main__":
    main()
