"""Section VI extension: the single labeled sample comes from an arbitrary floor.

When the one labeled sample is not on the bottom (or top) floor, FIS-ONE
solves the indexing TSP from every possible start cluster, keeps the best
unanchored ordering, and uses the labeled sample's embedding to decide the
orientation of the path.  The only unrecoverable case is a label on the
exact middle floor of an odd-floor building (Case 1 in the paper).

This example runs the same building with the anchor taken from every floor
and reports how the predictions degrade (the paper reports ~7% on average).

Run it with::

    python examples/arbitrary_floor_label.py
"""

from __future__ import annotations

from repro.core import FisOne, FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.indexing import MiddleFloorAmbiguityError
from repro.metrics import adjusted_rand_index, floor_accuracy
from repro.simulate import generate_single_building


def main() -> None:
    dataset = generate_single_building(num_floors=5, samples_per_floor=50, seed=13)
    truth = dataset.ground_truth
    config = FisOneConfig(
        gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(8, 4)),
        num_epochs=2,
        inference_sample_sizes=(20, 10),
    )

    print("Anchor floor | ARI    | Accuracy | Note")
    print("-------------+--------+----------+---------------------------")
    for floor in range(dataset.num_floors):
        anchor = dataset.pick_labeled_sample(floor=floor)
        observed = dataset.strip_labels(keep_record_ids=[anchor.record_id])
        try:
            result = FisOne(config).fit_predict(observed, anchor.record_id, labeled_floor=floor)
        except MiddleFloorAmbiguityError:
            print(f"      {floor}      |   --   |    --    | middle floor: ambiguous (Case 1)")
            continue
        ari = adjusted_rand_index(truth, result.floor_labels)
        accuracy = floor_accuracy(truth, result.floor_labels)
        note = "bottom floor (paper default)" if floor == 0 else (
            "top floor" if floor == dataset.num_floors - 1 else "arbitrary floor (Case 2)"
        )
        print(f"      {floor}      | {ari:.3f}  |  {accuracy:.3f}   | {note}")


if __name__ == "__main__":
    main()
