"""Quickstart: identify floors of crowdsourced RF signals with one labeled sample.

This example
1. simulates a 5-floor office building and a crowdsourced WiFi survey of it,
2. keeps the ground-truth floor of exactly ONE sample (on the bottom floor),
3. runs the full FIS-ONE pipeline (bipartite graph -> RF-GNN -> hierarchical
   clustering -> spillover-TSP indexing), and
4. scores the predicted floors against the withheld ground truth.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import FisOne, FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.metrics import adjusted_rand_index, floor_accuracy, normalized_mutual_information
from repro.simulate import generate_single_building


def main() -> None:
    # 1. A simulated building with ground-truth labels on every record.
    dataset = generate_single_building(num_floors=5, samples_per_floor=60, seed=7)
    print(f"Simulated building: {len(dataset)} samples, {len(dataset.macs)} access points, "
          f"{dataset.num_floors} floors")

    # 2. The crowdsourcing scenario: only one sample keeps its label.
    anchor = dataset.pick_labeled_sample(floor=0)
    observed = dataset.strip_labels(keep_record_ids=[anchor.record_id])
    print(f"Labeled anchor sample: {anchor.record_id!r} on floor {anchor.floor}")

    # 3. Run FIS-ONE.  A slightly reduced configuration keeps the example fast.
    config = FisOneConfig(
        gnn=RFGNNConfig(embedding_dim=32, neighbor_sample_sizes=(10, 5)),
        num_epochs=3,
    )
    result = FisOne(config).fit_predict(observed, anchor.record_id, labeled_floor=0)

    # 4. Compare the predictions with the withheld ground truth.
    truth = dataset.ground_truth
    print("\nResults")
    print(f"  Adjusted Rand Index : {adjusted_rand_index(truth, result.floor_labels):.3f}")
    nmi = normalized_mutual_information(truth, result.floor_labels)
    print(f"  Normalised MI       : {nmi:.3f}")
    print(f"  Floor accuracy      : {floor_accuracy(truth, result.floor_labels):.3f}")
    print(f"  Cluster -> floor map: {result.indexing.cluster_to_floor}")
    losses = [round(loss, 3) for loss in result.training_history.epoch_losses]
    print(f"  RF-GNN loss per epoch: {losses}")


if __name__ == "__main__":
    main()
