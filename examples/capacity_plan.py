"""Capacity planning: measure the fleet under load, answer "how many workers".

This example closes the observability loop end to end:

1. simulate a small fleet of buildings, fit one FIS-ONE model each, and
   persist the artifacts to a store,
2. drive deterministic open-loop traffic grids (arrival rate x building
   skew) against a :class:`~repro.serving.sharded.ShardedFleetServer` at
   each candidate worker count, recording every grid point's achieved
   throughput and latency quantiles,
3. ask the measured :class:`~repro.telemetry.CapacityPlanner` for the
   smallest worker count that sustains a target load inside a p99 budget,
4. round-trip the measured grid through JSON — the same shape the benchmark
   harness commits as ``BENCH_capacity.json`` — and recompute the plan
   offline from it.

Run it with::

    python examples/capacity_plan.py
    python examples/capacity_plan.py --workers 1 2 4 --target-rps 600
"""

from __future__ import annotations

import argparse
import tempfile

from repro.core import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import BuildingRegistry
from repro.simulate import generate_single_building
from repro.telemetry import CapacityPlanner, sweep_capacity

#: A reduced configuration so the example fits its buildings in seconds.
CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=10_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2],
        help="candidate worker counts to measure (default: 1 2)",
    )
    parser.add_argument(
        "--target-rps",
        type=float,
        default=None,
        help="records/s the plan must sustain (default: half the best "
        "measured capacity, so the demo plan is always feasible)",
    )
    parser.add_argument(
        "--p99-budget-ms",
        type=float,
        default=250.0,
        help="latency budget the plan's p99 must stay inside (default 250)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="fisone-capacity-") as store:
        # 1. Three small buildings, fitted and persisted; the held-back
        #    records become the replayable online traffic.
        registry = BuildingRegistry(store_dir=store, config=CONFIG)
        streams = {}
        for index in range(3):
            labeled = generate_single_building(
                num_floors=3, samples_per_floor=30, seed=60 + index
            )
            train, stream = labeled.holdout_split(train_per_floor=22)
            building_id = f"building-{index}"
            registry.register(building_id, train)
            registry.get(building_id)  # fit now, so the sweep measures serving
            streams[building_id] = [record.without_floor() for record in stream]
        print(f"fitted and persisted {len(streams)} buildings to {store}")

        # 2. Measure the worker-count x arrival-rate x skew grid.  The same
        #    deterministic trace replays against every worker count, so the
        #    comparison isolates the serving topology.
        print(f"measuring worker counts {args.workers} (one fleet boot each)...")
        planner = sweep_capacity(
            store,
            streams,
            worker_counts=args.workers,
            arrival_rates_hz=(40.0, 80.0),
            building_skews=(0.0, 0.7),
            num_requests=80,
            seed=17,
            server_kwargs={"config": CONFIG},
        )
        print(f"{'workers':>8} {'rate Hz':>8} {'skew':>5} "
              f"{'achieved rps':>13} {'p50 ms':>8} {'p99 ms':>8} {'rej':>4}")
        for point in planner.points:
            print(f"{point.num_workers:>8} {point.arrival_rate_hz:>8.0f} "
                  f"{point.building_skew:>5.1f} {point.achieved_rps:>13.0f} "
                  f"{point.p50_s * 1e3:>8.2f} {point.p99_s * 1e3:>8.2f} "
                  f"{point.num_rejections:>4}")

        # 3. Plan against the measurements (never extrapolating past them).
        budget_s = args.p99_budget_ms / 1e3
        target = args.target_rps
        if target is None:
            best = max(point.achieved_rps for point in planner.points)
            target = best / 2
            print(f"\nno --target-rps given; planning for half the best "
                  f"measured capacity ({target:.0f} records/s)")
        plan = planner.plan(target_rps=target, p99_budget_s=budget_s)
        verdict = "feasible" if plan.feasible else "NOT feasible"
        print(f"plan({target:.0f} rps, p99 <= {args.p99_budget_ms:.0f}ms): "
              f"{verdict} -> {plan.num_workers} worker(s) at "
              f"{plan.capacity_rps:.0f} records/s "
              f"({plan.rps_margin:.2f}x the target)")
        print(f"  {plan.reason}")

        # 4. The grid serializes to plain JSON and the plan recomputes
        #    offline from it — what the perf-guard floors in CI.
        restored = CapacityPlanner.from_json(planner.to_json())
        offline = restored.plan(target_rps=target, p99_budget_s=budget_s)
        assert offline == plan
        print("round-tripped the measured grid through JSON; "
              "the offline plan matches the live one")


if __name__ == "__main__":
    main()
