"""Evaluate FIS-ONE over a fleet of buildings shaped like the Microsoft dataset.

The paper's main evaluation averages over 152 buildings with 3-10 floors.
This example regenerates a (smaller) fleet with the same floor-count
distribution, runs FIS-ONE on every building with a single bottom-floor
label, and prints the per-building and aggregate scores — the same protocol
the Table I benchmark uses at larger scale.

Run it with::

    python examples/microsoft_fleet_evaluation.py [num_buildings]
"""

from __future__ import annotations

import sys

from repro.core import FisOneConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import evaluate_fis_one_on_building, summarize
from repro.gnn.model import RFGNNConfig
from repro.simulate import FleetConfig, generate_microsoft_like_fleet


def main(num_buildings: int = 4) -> None:
    fleet = generate_microsoft_like_fleet(
        FleetConfig(num_buildings=num_buildings, samples_per_floor=40)
    )
    print(f"Generated {len(fleet)} buildings: "
          + ", ".join(f"{dataset.building_id} ({dataset.num_floors}F)" for dataset in fleet))

    config = FisOneConfig(
        gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(8, 4)),
        num_epochs=2,
        inference_sample_sizes=(20, 10),
    )

    evaluations = []
    for dataset in fleet:
        evaluation = evaluate_fis_one_on_building(dataset, config)
        evaluations.append(evaluation)
        print(
            f"  {dataset.building_id:14s} ARI {evaluation.ari:.3f}  NMI {evaluation.nmi:.3f}  "
            f"EditDist {evaluation.edit_distance:.3f}  Accuracy {evaluation.accuracy:.3f}"
        )

    print("\n" + format_table(
        [summarize(evaluations, "FIS-ONE")], title="Fleet aggregate (mean/std)"
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
