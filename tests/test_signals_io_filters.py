"""Tests for dataset I/O (JSON/CSV) and the preprocessing filters."""

import pytest

from repro.signals.dataset import DatasetError, SignalDataset
from repro.signals.filters import (
    drop_rare_macs,
    drop_sparse_floors,
    drop_weak_readings,
    filter_fleet_for_evaluation,
    keep_strongest_readings,
)
from repro.signals.io import (
    dataset_from_json,
    dataset_to_json,
    load_dataset_csv,
    load_dataset_json,
    save_dataset_csv,
    save_dataset_json,
)
from repro.signals.record import SignalRecord


class TestJsonIO:
    def test_round_trip_in_memory(self, tiny_dataset):
        restored = dataset_from_json(dataset_to_json(tiny_dataset))
        assert restored.record_ids == tiny_dataset.record_ids
        assert restored.num_floors == tiny_dataset.num_floors
        assert restored.get("r1").readings == tiny_dataset.get("r1").readings

    def test_round_trip_file(self, tiny_dataset, tmp_path):
        path = tmp_path / "data" / "building.json"
        save_dataset_json(tiny_dataset, path)
        restored = load_dataset_json(path)
        assert restored.record_ids == tiny_dataset.record_ids

    def test_unsupported_version(self, tiny_dataset):
        payload = dataset_to_json(tiny_dataset)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            dataset_from_json(payload)

    def test_unlabeled_records_round_trip(self):
        dataset = SignalDataset(
            [SignalRecord("u0", {"aa": -50.0}), SignalRecord("u1", {"bb": -60.0})],
            building_id="blind",
            num_floors=4,
        )
        restored = dataset_from_json(dataset_to_json(dataset))
        assert restored.labels == [None, None]
        assert restored.num_floors == 4
        assert restored.building_id == "blind"

    def test_stale_num_floors_header_rejected(self, tiny_dataset):
        payload = dataset_to_json(tiny_dataset)
        payload["num_floors"] = 1  # records go up to floor 1 -> needs >= 2
        with pytest.raises(ValueError, match="cannot cover floor 1"):
            dataset_from_json(payload)

    def test_num_floors_header_may_exceed_labels(self, tiny_dataset):
        payload = dataset_to_json(tiny_dataset)
        payload["num_floors"] = 7  # taller building, sparsely surveyed: fine
        restored = dataset_from_json(payload)
        assert restored.num_floors == 7
        assert restored.floors_present == [0, 1]

    def test_non_contiguous_floors_round_trip(self, tmp_path):
        dataset = SignalDataset(
            [
                SignalRecord("r0", {"aa": -40.0}, floor=0),
                SignalRecord("r3", {"bb": -45.0}, floor=3),
            ],
            num_floors=5,
        )
        path = tmp_path / "sparse.json"
        save_dataset_json(dataset, path)
        restored = load_dataset_json(path)
        assert restored.floors_present == [0, 3]
        assert restored.num_floors == 5


class TestCsvIO:
    def test_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "building.csv"
        save_dataset_csv(tiny_dataset, path)
        restored = load_dataset_csv(path, building_id="tiny", num_floors=2)
        assert restored.record_ids == tiny_dataset.record_ids
        for record_id in tiny_dataset.record_ids:
            assert restored.get(record_id).readings == tiny_dataset.get(record_id).readings
            assert restored.get(record_id).floor == tiny_dataset.get(record_id).floor

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("record_id,mac\nr1,aa\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_stale_num_floors_rejected(self, tiny_dataset, tmp_path):
        path = tmp_path / "building.csv"
        save_dataset_csv(tiny_dataset, path)
        with pytest.raises(ValueError, match="cannot cover floor 1"):
            load_dataset_csv(path, num_floors=1)

    def test_positions_preserved(self, tmp_path):
        dataset = SignalDataset(
            [SignalRecord("r1", {"aa": -50.0}, floor=0, position=(1.0, 2.0))],
            num_floors=1,
        )
        path = tmp_path / "pos.csv"
        save_dataset_csv(dataset, path)
        restored = load_dataset_csv(path, num_floors=1)
        assert restored.get("r1").position == (1.0, 2.0)

    def test_unlabeled_and_positionless_round_trip(self, tmp_path):
        dataset = SignalDataset(
            [
                SignalRecord("u0", {"aa": -50.0, "bb": -72.5}),
                SignalRecord("u1", {"cc": -61.0}, device_id="dev-7", timestamp=12.5),
            ],
            num_floors=3,
        )
        path = tmp_path / "unlabeled.csv"
        save_dataset_csv(dataset, path)
        restored = load_dataset_csv(path, num_floors=3)
        assert restored.labels == [None, None]
        assert restored.get("u0").position is None
        assert restored.get("u1").device_id == "dev-7"
        assert restored.get("u1").timestamp == 12.5
        assert restored.get("u0").readings == dataset.get("u0").readings

    def test_non_contiguous_floors_round_trip(self, tmp_path):
        dataset = SignalDataset(
            [
                SignalRecord("r0", {"aa": -40.0}, floor=1),
                SignalRecord("r4", {"bb": -45.0}, floor=4),
            ],
            num_floors=6,
        )
        path = tmp_path / "sparse.csv"
        save_dataset_csv(dataset, path)
        restored = load_dataset_csv(path, num_floors=6)
        assert restored.floors_present == [1, 4]
        assert restored.num_floors == 6


class TestFilters:
    def _dataset(self):
        records = []
        for floor, count in [(0, 5), (1, 2)]:
            for i in range(count):
                records.append(
                    SignalRecord(
                        f"f{floor}-{i}",
                        {"aa": -50.0, "bb": -105.0, f"rare{floor}{i}": -60.0},
                        floor=floor,
                    )
                )
        return SignalDataset(records, num_floors=2)

    def test_drop_sparse_floors(self):
        dataset = self._dataset()
        filtered = drop_sparse_floors(dataset, min_samples=3)
        assert filtered.floors_present == [0]

    def test_drop_sparse_floors_noop(self):
        dataset = self._dataset()
        assert drop_sparse_floors(dataset, min_samples=1) is dataset

    def test_drop_sparse_floors_validation(self):
        with pytest.raises(ValueError):
            drop_sparse_floors(self._dataset(), min_samples=0)

    def test_drop_weak_readings(self):
        filtered = drop_weak_readings(self._dataset(), threshold_dbm=-100.0)
        assert all("bb" not in record for record in filtered)

    def test_drop_weak_readings_all_removed(self):
        dataset = SignalDataset([SignalRecord("r1", {"aa": -110.0})], num_floors=1)
        with pytest.raises(DatasetError):
            drop_weak_readings(dataset, threshold_dbm=-100.0)

    def test_drop_rare_macs(self):
        filtered = drop_rare_macs(self._dataset(), min_appearances=2)
        assert all(not mac.startswith("rare") for mac in filtered.macs)
        assert "aa" in filtered.macs

    def test_keep_strongest_readings(self):
        filtered = keep_strongest_readings(self._dataset(), k=1)
        assert all(len(record) == 1 for record in filtered)
        assert all("aa" in record for record in filtered)

    def test_filter_fleet_for_evaluation(self):
        tall = self._dataset()  # only 2 floors -> dropped
        kept = filter_fleet_for_evaluation([tall], min_floors=3, min_samples_per_floor=1)
        assert kept == []

    def test_filter_fleet_keeps_valid_building(self, small_building_dataset):
        kept = filter_fleet_for_evaluation(
            [small_building_dataset], min_floors=3, min_samples_per_floor=10
        )
        assert len(kept) == 1
