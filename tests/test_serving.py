"""Tests for the serving subsystem: fitted models, artifacts, registry, server."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import FisOne, FisOneConfig, FittedFisOne
from repro.gnn.model import RFGNNConfig
from repro.gnn.trainer import RFGNNTrainer
from repro.graph.bipartite import BipartiteGraph
from repro.serving import (
    ArtifactError,
    BuildingRegistry,
    FleetServer,
    LabelRequest,
    OnlineFloorLabeler,
    load_artifacts,
    save_artifacts,
)
from repro.serving.artifacts import MANIFEST_FILENAME, config_from_dict, config_to_dict
from repro.signals.dataset import SignalDataset
from repro.signals.record import SignalRecord
from repro.simulate import generate_single_building
from repro.simulate.generators import generate_building_dataset
from tests.conftest import small_building_config

#: Benchmark-sized configuration for the fixture building fitted once below.
SERVING_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=3,
    max_pairs_per_epoch=15_000,
    inference_passes=2,
    inference_sample_sizes=(30, 15),
)

#: Even smaller configuration for registry/server tests that fit several
#: tiny buildings.
TINY_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(8, 4)),
    num_epochs=2,
    max_pairs_per_epoch=4_000,
    inference_passes=1,
    inference_sample_sizes=(12, 6),
)


@pytest.fixture(scope="module")
def serving_building():
    """A labeled 3-floor building split into train (96) and held-out (54)."""
    labeled = generate_single_building(num_floors=3, samples_per_floor=50, seed=21)
    train, held = labeled.holdout_split(train_per_floor=32)
    return labeled, train, held


@pytest.fixture(scope="module")
def fitted_model(serving_building):
    """One fitted model on the training split (fit once per module)."""
    _, train, _ = serving_building
    anchor = train.pick_labeled_sample(floor=0)
    observed = train.strip_labels(keep_record_ids=[anchor.record_id])
    fitted = FisOne(SERVING_CONFIG).fit(observed, anchor.record_id, labeled_floor=0)
    return observed, anchor, fitted


def tiny_building(seed: int) -> SignalDataset:
    """A fast-to-fit 3-floor building for registry/server tests."""
    return generate_building_dataset(
        small_building_config(num_floors=3, samples_per_floor=12), seed=seed
    )


class TestFittedFisOne:
    def test_fit_returns_fitted_model(self, fitted_model):
        observed, _, fitted = fitted_model
        assert isinstance(fitted, FittedFisOne)
        assert fitted.num_floors == 3
        assert fitted.record_ids == tuple(observed.record_ids)
        assert fitted.centroids.shape == (3, SERVING_CONFIG.gnn.embedding_dim)
        assert fitted.encoder.num_hops == SERVING_CONFIG.gnn.num_hops
        assert set(fitted.cluster_to_floor.values()) == {0, 1, 2}

    def test_predict_on_training_dataset_reproduces_labels(self, fitted_model):
        observed, _, fitted = fitted_model
        assert np.array_equal(fitted.predict(observed), fitted.floor_labels)

    def test_fit_predict_is_thin_wrapper(self):
        dataset = tiny_building(seed=31)
        anchor = dataset.pick_labeled_sample(floor=0)
        observed = dataset.strip_labels(keep_record_ids=[anchor.record_id])
        fitted = FisOne(TINY_CONFIG).fit(observed, anchor.record_id)
        result = FisOne(TINY_CONFIG).fit_predict(observed, anchor.record_id)
        assert np.array_equal(result.floor_labels, fitted.result.floor_labels)
        assert np.allclose(result.embeddings, fitted.result.embeddings)

    def test_online_accuracy_tracks_full_refit(self, serving_building, fitted_model):
        labeled, _, held = serving_building
        observed, anchor, fitted = fitted_model
        assert len(held) >= 50
        truth = np.array([record.floor for record in held])

        floors, confidences, known = fitted.online_floors(held)
        online_accuracy = float(np.mean(floors == truth))

        # Reference: refit the whole pipeline with the held-out records merged
        # into the (unlabeled) crowdsourced dataset.
        merged = observed.merge(
            SignalDataset(
                [record.without_floor() for record in held],
                num_floors=labeled.num_floors,
            )
        )
        refit = FisOne(SERVING_CONFIG).fit_predict(merged, anchor.record_id)
        held_positions = [merged.index_of(record.record_id) for record in held]
        refit_accuracy = float(np.mean(refit.floor_labels[held_positions] == truth))

        assert online_accuracy >= refit_accuracy - 0.05
        assert np.all(known == 1.0)
        assert np.all((confidences > 0.0) & (confidences <= 1.0))

    def test_unknown_macs_fall_back_with_zero_confidence(self, fitted_model):
        _, _, fitted = fitted_model
        alien = SignalRecord("alien", {"ff:ff:ff:00:00:01": -60.0, "ff:ff:ff:00:00:02": -70.0})
        floors, confidences, known = fitted.online_floors([alien])
        assert 0 <= floors[0] < fitted.num_floors
        assert confidences[0] == 0.0
        assert known[0] == 0.0

    def test_boundary_rss_reading_does_not_crash(self, fitted_model):
        # -120 dBm is a *valid* reading but maps to edge weight 0; the
        # online path must clamp it rather than fail the batch.
        _, _, fitted = fitted_model
        mac = fitted.encoder.mac_vocabulary[0]
        faint = SignalRecord("faint", {mac: -120.0})
        floors, confidences, known = fitted.online_floors([faint])
        assert 0 <= floors[0] < fitted.num_floors
        assert known[0] == 1.0

    def test_no_attention_model_serves_online(self):
        # The Figure 8(a-b) ablation trains with uniform (mean) aggregation;
        # the frozen encoder must aggregate the same way, also after a
        # save/load round trip.
        dataset = tiny_building(seed=33)
        anchor = dataset.pick_labeled_sample(floor=0)
        observed = dataset.strip_labels(keep_record_ids=[anchor.record_id])
        fitted = FisOne(TINY_CONFIG.without_attention()).fit(observed, anchor.record_id)
        assert fitted.encoder.attention is False
        records = [record.without_floor() for record in list(dataset)[:5]]
        floors, _, known = fitted.online_floors(records)
        assert np.all((0 <= floors) & (floors < 3))
        assert np.all(known == 1.0)

    def test_predict_mixes_stored_and_online(self, serving_building, fitted_model):
        _, _, held = serving_building
        observed, _, fitted = fitted_model
        mixed = observed.merge(
            SignalDataset([held[0].without_floor()], num_floors=fitted.num_floors)
        )
        labels = fitted.predict(mixed)
        assert np.array_equal(labels[: len(observed)], fitted.floor_labels)
        assert 0 <= labels[-1] < fitted.num_floors


class TestTrainerOnlineEmbeddings:
    def test_sample_embeddings_accepts_out_of_dataset_records(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        trainer = RFGNNTrainer(
            graph,
            RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(4, 2)),
            num_epochs=1,
            seed=0,
        )
        trainer.fit()
        new_records = [
            SignalRecord("new-0", {"aa": -45.0, "bb": -58.0}),
            SignalRecord("new-1", {"cc": -50.0, "dd": -51.0}),
        ]
        embeddings = trainer.sample_embeddings(sample_sizes=(8, 4), records=new_records)
        assert embeddings.shape == (2, 8)
        assert np.allclose(np.linalg.norm(embeddings, axis=1), 1.0)


class TestArtifacts:
    def test_round_trip_reproduces_predictions(self, fitted_model, tmp_path):
        observed, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        loaded = load_artifacts(path)
        assert loaded.building_id == fitted.building_id
        assert loaded.num_floors == fitted.num_floors
        assert loaded.record_ids == fitted.record_ids
        assert loaded.config == fitted.config
        assert np.array_equal(loaded.predict(observed), fitted.floor_labels)

    def test_round_trip_online_labels_identical(self, serving_building, fitted_model, tmp_path):
        _, _, held = serving_building
        _, _, fitted = fitted_model
        loaded = load_artifacts(save_artifacts(fitted, tmp_path / "building"))
        original = fitted.online_floors(held)
        restored = loaded.online_floors(held)
        assert np.array_equal(original[0], restored[0])
        assert np.allclose(original[1], restored[1])

    def test_round_trip_preserves_attention_flag(self, tmp_path):
        dataset = tiny_building(seed=34)
        anchor = dataset.pick_labeled_sample(floor=0)
        observed = dataset.strip_labels(keep_record_ids=[anchor.record_id])
        fitted = FisOne(TINY_CONFIG.without_attention()).fit(observed, anchor.record_id)
        loaded = load_artifacts(save_artifacts(fitted, tmp_path / "ablated"))
        assert loaded.encoder.attention is False
        assert loaded.config.gnn.attention is False

    def test_round_trip_preserves_training_graph(self, fitted_model, tmp_path):
        _, _, fitted = fitted_model
        loaded = load_artifacts(save_artifacts(fitted, tmp_path / "building"))
        assert loaded.graph is not None
        assert np.array_equal(loaded.graph.indptr, fitted.graph.indptr)
        assert np.array_equal(loaded.graph.indices, fitted.graph.indices)
        assert np.array_equal(loaded.graph.weights, fitted.graph.weights)
        assert np.array_equal(loaded.graph.kinds, fitted.graph.kinds)
        assert list(loaded.graph.keys) == list(fitted.graph.keys)
        assert loaded.graph.offset_db == fitted.graph.offset_db

    def test_loaded_graph_warm_starts_record_growth(self, fitted_model, tmp_path):
        # The serving warm-start path: load a model, thaw its persisted
        # graph, and grow it with a new crowdsourced record — no dataset
        # re-parse, no refit.
        observed, _, fitted = fitted_model
        loaded = load_artifacts(save_artifacts(fitted, tmp_path / "building"))
        builder = loaded.warm_start_graph()
        known_mac = next(iter(observed[0].readings))
        before_nodes = builder.num_nodes
        builder.add_record(SignalRecord("online-0", {known_mac: -55.0}))
        assert builder.num_nodes == before_nodes + 1  # new sample, known MAC
        regrown = builder.freeze()
        assert regrown.sample_node_id("online-0") == before_nodes
        assert regrown.num_edges == loaded.graph.num_edges + 1

    def test_save_without_graph_opt_out(self, fitted_model, tmp_path):
        # Fleets that never grow graphs offline can skip the O(edges) cost.
        _, _, fitted = fitted_model
        loaded = load_artifacts(
            save_artifacts(fitted, tmp_path / "slim", include_graph=False)
        )
        assert loaded.graph is None
        with pytest.raises(ValueError, match="no training graph"):
            loaded.warm_start_graph()

    def test_legacy_artifact_without_graph_still_loads(self, fitted_model, tmp_path):
        # Artifacts saved before the CSR graph was persisted lack the graph_*
        # arrays; they must load fine, with warm start explicitly refused.
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        arrays_path = path / "arrays.npz"
        with np.load(arrays_path) as stored:
            arrays = {
                name: stored[name]
                for name in stored.files
                if not name.startswith("graph_")
            }
        np.savez_compressed(arrays_path, **arrays)
        loaded = load_artifacts(path)
        assert loaded.graph is None
        with pytest.raises(ValueError, match="no training graph"):
            loaded.warm_start_graph()

    def test_unsupported_version_rejected(self, fitted_model, tmp_path):
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError):
            load_artifacts(path)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifacts(tmp_path / "nowhere")

    def test_inconsistent_arrays_rejected(self, fitted_model, tmp_path):
        # A torn overwrite (manifest from one fit, arrays from another) must
        # fail at load time, not as an IndexError at predict time.
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        arrays_path = path / "arrays.npz"
        with np.load(arrays_path) as stored:
            arrays = {name: stored[name] for name in stored.files}
        arrays["floor_labels"] = arrays["floor_labels"][:-5]
        np.savez_compressed(arrays_path, **arrays)
        with pytest.raises(ArtifactError, match="inconsistent"):
            load_artifacts(path)

    def test_dimensionally_corrupt_weights_rejected(self, fitted_model, tmp_path):
        # Bit rot that preserves the token and row counts but breaks the
        # weight chain must fail at load, not as a matmul error mid-request.
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        arrays_path = path / "arrays.npz"
        with np.load(arrays_path) as stored:
            arrays = {name: stored[name] for name in stored.files}
        arrays["weight_0"] = arrays["weight_0"][:, :-2]
        np.savez_compressed(arrays_path, **arrays)
        with pytest.raises(ArtifactError, match="inconsistent"):
            load_artifacts(path)

    def test_mismatched_save_token_rejected(self, fitted_model, tmp_path):
        # Manifest and arrays from *different* saves (the cross-process
        # overwrite race) must be caught even when every shape matches.
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        manifest_path = path / MANIFEST_FILENAME
        stale_manifest = manifest_path.read_text()
        save_artifacts(fitted, path)  # overwrite: new token in both files
        manifest_path.write_text(stale_manifest)  # old manifest, new arrays
        with pytest.raises(ArtifactError, match="different saves"):
            load_artifacts(path)

    def test_config_round_trip(self):
        payload = config_to_dict(SERVING_CONFIG)
        assert config_from_dict(json.loads(json.dumps(payload))) == SERVING_CONFIG

    @staticmethod
    def _manifest_modulo_token(path):
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        manifest.pop("save_token")
        return manifest

    @staticmethod
    def _arrays_modulo_token(path):
        with np.load(path / "arrays.npz") as stored:
            return {
                name: stored[name]
                for name in stored.files
                if name != "save_token"
            }

    @pytest.mark.parametrize("include_graph", [True, False])
    def test_save_load_save_is_idempotent(
        self, fitted_model, tmp_path, include_graph
    ):
        # save -> load -> save must reproduce the manifest verbatim (modulo
        # the per-save token) and every array bit for bit: nothing may be
        # lost or perturbed by a round trip through disk.
        _, _, fitted = fitted_model
        first = save_artifacts(
            fitted, tmp_path / "first", include_graph=include_graph
        )
        loaded = load_artifacts(first)
        second = save_artifacts(
            loaded, tmp_path / "second", include_graph=include_graph
        )
        assert self._manifest_modulo_token(first) == self._manifest_modulo_token(
            second
        )
        arrays_first = self._arrays_modulo_token(first)
        arrays_second = self._arrays_modulo_token(second)
        assert set(arrays_first) == set(arrays_second)
        if include_graph:
            assert "graph_indptr" in arrays_first
        else:
            assert not any(name.startswith("graph_") for name in arrays_first)
        for name, array in arrays_first.items():
            other = arrays_second[name]
            assert array.dtype == other.dtype, name
            assert array.shape == other.shape, name
            assert array.tobytes() == other.tobytes(), name

    def test_truncated_arrays_raise_artifact_error(self, fitted_model, tmp_path):
        # A partially copied arrays.npz must fail as a clear ArtifactError,
        # not a BadZipFile/OSError stack from numpy internals.
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        arrays_path = path / "arrays.npz"
        payload = arrays_path.read_bytes()
        arrays_path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ArtifactError, match="unreadable arrays"):
            load_artifacts(path)

    def test_corrupted_manifest_raises_artifact_error(
        self, fitted_model, tmp_path
    ):
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        (path / MANIFEST_FILENAME).write_text("{not valid json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="unreadable manifest"):
            load_artifacts(path)

    def test_truncated_manifest_raises_artifact_error(
        self, fitted_model, tmp_path
    ):
        _, _, fitted = fitted_model
        path = save_artifacts(fitted, tmp_path / "building")
        manifest_path = path / MANIFEST_FILENAME
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        with pytest.raises(ArtifactError, match="unreadable manifest"):
            load_artifacts(path)


class TestBuildingRegistry:
    def test_lazy_fit_and_cache_hits(self):
        registry = BuildingRegistry(capacity=2, config=TINY_CONFIG)
        registry.register("b0", tiny_building(seed=41))
        first = registry.get("b0")
        second = registry.get("b0")
        assert first is second
        assert registry.stats.fits == 1
        assert registry.stats.hits == 1
        assert registry.stats.misses == 1

    def test_label_returns_typed_results(self):
        registry = BuildingRegistry(capacity=2, config=TINY_CONFIG)
        dataset = tiny_building(seed=42)
        registry.register("b0", dataset)
        labels = registry.label("b0", list(dataset)[:3])
        assert len(labels) == 3
        assert all(0 <= label.floor < 3 for label in labels)
        assert all(label.known_mac_fraction == 1.0 for label in labels)

    def test_eviction_reloads_from_store(self, tmp_path):
        registry = BuildingRegistry(
            store_dir=tmp_path / "store", capacity=1, config=TINY_CONFIG
        )
        registry.register("b0", tiny_building(seed=43))
        registry.register("b1", tiny_building(seed=44))
        registry.get("b0")
        registry.get("b1")  # evicts b0 (capacity 1), but b0 is on disk
        assert registry.cached_building_ids == ["b1"]
        assert registry.stats.evictions == 1
        registry.get("b0")
        assert registry.stats.fits == 2
        assert registry.stats.loads == 1

    def test_fresh_registry_serves_from_store(self, tmp_path):
        store = tmp_path / "store"
        writer = BuildingRegistry(store_dir=store, capacity=2, config=TINY_CONFIG)
        dataset = tiny_building(seed=45)
        writer.register("b0", dataset)
        writer.get("b0")

        reader = BuildingRegistry(store_dir=store, capacity=2, config=TINY_CONFIG)
        assert "b0" in reader
        labels = reader.label("b0", list(dataset)[:2])
        assert len(labels) == 2
        assert reader.stats.loads == 1
        assert reader.stats.fits == 0

    def test_unknown_building_rejected(self):
        registry = BuildingRegistry(config=TINY_CONFIG)
        with pytest.raises(KeyError):
            registry.get("ghost")

    def test_path_escaping_building_ids_rejected(self, tmp_path):
        registry = BuildingRegistry(store_dir=tmp_path / "store", config=TINY_CONFIG)
        for bad_id in ("../outside", "a/b", "a\\b", "C:evil", "..", ""):
            with pytest.raises(ValueError):
                registry.register(bad_id, tiny_building(seed=57))
            with pytest.raises(ValueError):
                registry.get(bad_id)
            assert bad_id not in registry

    def test_corrupt_artifact_falls_back_to_refit(self, tmp_path):
        store = tmp_path / "store"
        registry = BuildingRegistry(store_dir=store, capacity=2, config=TINY_CONFIG)
        registry.register("b0", tiny_building(seed=58))
        registry.get("b0")
        (store / "b0" / "arrays.npz").write_bytes(b"not a zipfile")

        # A fresh registry with the source registered refits over the junk.
        recovered = BuildingRegistry(store_dir=store, capacity=2, config=TINY_CONFIG)
        recovered.register("b0", tiny_building(seed=58))
        fitted = recovered.get("b0")
        assert recovered.stats.fits == 1
        assert recovered.stats.loads == 0
        # ... and the refit overwrote the corrupt artifact in place.
        reloaded = BuildingRegistry(store_dir=store, capacity=2, config=TINY_CONFIG)
        assert np.array_equal(
            reloaded.get("b0").floor_labels, fitted.floor_labels
        )

    def test_reregister_supersedes_cached_and_stored_model(self, tmp_path):
        registry = BuildingRegistry(
            store_dir=tmp_path / "store", capacity=2, config=TINY_CONFIG
        )
        registry.register("b0", tiny_building(seed=55))
        first = registry.get("b0")
        # Refreshed survey data: the old cache entry and artifact are stale.
        refreshed = tiny_building(seed=56)
        registry.register("b0", refreshed)
        second = registry.get("b0")
        assert second is not first
        assert registry.stats.fits == 2  # refit, not a stale disk load
        assert second.record_ids == tuple(refreshed.record_ids)

    def test_unrecoverable_models_are_pinned_not_evicted(self):
        # add_fitted without a store_dir or registered source: eviction
        # would lose the model forever, so the cache must pin it instead.
        registry = BuildingRegistry(capacity=1, config=TINY_CONFIG)
        dataset_a = tiny_building(seed=46)
        anchor_a = dataset_a.pick_labeled_sample(floor=0)
        fitted_a = FisOne(TINY_CONFIG).fit(dataset_a, anchor_a.record_id)
        registry.add_fitted("a", fitted_a)

        dataset_b = tiny_building(seed=47)
        anchor_b = dataset_b.pick_labeled_sample(floor=0)
        registry.add_fitted("b", FisOne(TINY_CONFIG).fit(dataset_b, anchor_b.record_id))

        assert registry.get("a") is fitted_a
        assert registry.stats.evictions == 0
        assert set(registry.cached_building_ids) == {"a", "b"}


class TestFleetServer:
    def test_serve_batches_across_buildings(self):
        registry = BuildingRegistry(capacity=4, config=TINY_CONFIG)
        datasets = {f"b{i}": tiny_building(seed=50 + i) for i in range(2)}
        for building_id, dataset in datasets.items():
            registry.register(building_id, dataset)
        requests = [
            LabelRequest(
                request_id=f"req-{i}",
                building_id=f"b{i % 2}",
                records=tuple(list(datasets[f"b{i % 2}"])[:3]),
            )
            for i in range(6)
        ]
        with FleetServer(registry, num_workers=2, batch_window_s=0.01) as server:
            responses = server.serve(requests)
            stats = server.stats()
        assert [response.request_id for response in responses] == [
            request.request_id for request in requests
        ]
        assert all(len(response.labels) == 3 for response in responses)
        assert all(response.latency_s >= 0.0 for response in responses)
        assert stats.num_requests == 6
        assert stats.num_records == 18
        assert 1 <= stats.num_batches <= 6
        assert stats.records_per_second > 0

    def test_batched_labels_match_direct_labeling(self):
        registry = BuildingRegistry(capacity=2, config=TINY_CONFIG)
        dataset = tiny_building(seed=52)
        registry.register("b0", dataset)
        records = list(dataset)[:4]
        direct = OnlineFloorLabeler(registry.get("b0")).label(records)
        with FleetServer(registry, num_workers=2) as server:
            futures = [server.submit("b0", [record]) for record in records]
            served = [future.result(timeout=60).labels[0] for future in futures]
        assert served == direct

    def test_submit_requires_running_server(self):
        registry = BuildingRegistry(config=TINY_CONFIG)
        server = FleetServer(registry)
        with pytest.raises(RuntimeError):
            server.submit("b0", [SignalRecord("r", {"aa": -50.0})])

    def test_unknown_building_error_travels_via_future(self):
        registry = BuildingRegistry(config=TINY_CONFIG)
        with FleetServer(registry, num_workers=1) as server:
            future = server.submit("ghost", [SignalRecord("r", {"aa": -50.0})])
            with pytest.raises(KeyError):
                future.result(timeout=60)

    def test_sustained_traffic_does_not_starve_small_batches(self):
        # A lone request for building B must flush within the batch window
        # even while building A receives a steady sub-window request stream.
        import threading
        import time

        registry = BuildingRegistry(capacity=4, config=TINY_CONFIG)
        dataset_a, dataset_b = tiny_building(seed=48), tiny_building(seed=49)
        registry.register("a", dataset_a)
        registry.register("b", dataset_b)
        registry.get("a")
        registry.get("b")  # prefit both so only dispatch latency is measured

        with FleetServer(registry, num_workers=2, batch_window_s=0.05) as server:
            stop_stream = threading.Event()

            def stream():
                while not stop_stream.is_set():
                    server.submit("a", [list(dataset_a)[0]])
                    time.sleep(0.005)

            streamer = threading.Thread(target=stream, daemon=True)
            streamer.start()
            try:
                time.sleep(0.05)  # the stream is established
                lone = server.submit("b", [list(dataset_b)[0]])
                response = lone.result(timeout=2.0)
                assert len(response.labels) == 1
            finally:
                stop_stream.set()
                streamer.join()
