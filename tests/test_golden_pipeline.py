"""Seed-stability regression test pinning the pipeline's exact outputs.

The golden values below were produced by the pre-refactor (list-backed
graph) implementation on a fixed-seed simulated building.  The CSR graph
core, the shared alias tables, and the vectorised graph build are all
required to leave every random stream untouched, so the refactored pipeline
must reproduce these outputs *byte for byte* — floor labels, cluster order,
and the embedding matrix (pinned via its SHA-256).

If an intentional change to the pipeline's randomness lands (new RNG
consumer, different walk schedule, ...), regenerate the goldens with the
helper at the bottom of this file and say so in the commit message.
"""

import hashlib

import numpy as np
import pytest

from repro.core import FisOne
from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.signals.record import SignalRecord
from repro.simulate import generate_single_building

#: Building generation seed (3 floors x 25 samples).
BUILDING_SEED = 17

#: Expected predicted floor per record, in dataset record order.
GOLDEN_FLOOR_LABELS = [0] * 25 + [1] * 25 + [2] * 25

#: Expected cluster visit order from the spillover TSP indexing.
GOLDEN_CLUSTER_ORDER = [0, 1, 2]

#: SHA-256 of the (75, 16) float64 embedding matrix bytes, recorded with the
#: NumPy build below.  Byte-exactness across *code changes* is the contract;
#: across NumPy builds/CPU kernels the BLAS dispatch may differ by ULPs, so
#: the hash is only asserted when the running NumPy matches the recording.
GOLDEN_EMBEDDINGS_SHA256 = (
    "2b108dd967cb20fa252682dae541da218811d062bf9186b794d6568faa04196c"
)
GOLDEN_NUMPY_VERSION = "2.4"

#: First four coordinates of the first embedding row (quick human-readable
#: check when the hash mismatches).
GOLDEN_FIRST_ROW_PREFIX = [0.21406357, 0.26516586, 0.23651805, -0.31041388]

#: (source floor, position in the observed dataset) of the records cloned as
#: deterministic growth material for the refresh golden below.
GOLDEN_REFRESH_SOURCES = [(0, 3), (0, 7), (1, 28), (1, 33), (2, 55), (2, 61)]

#: Expected floor label of each cloned record after a fixed-seed
#: ``refresh(fine_tune_epochs=1)`` — each clone must land on its source's
#: floor, and every pre-refresh record must keep its label exactly.
GOLDEN_REFRESH_NEW_LABELS = [0, 0, 1, 1, 2, 2]


def golden_config() -> FisOneConfig:
    return FisOneConfig(
        gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
        num_epochs=3,
        max_pairs_per_epoch=15_000,
        inference_passes=2,
        inference_sample_sizes=(30, 15),
        seed=0,
    )


@pytest.fixture(scope="module")
def golden_result():
    labeled = generate_single_building(
        num_floors=3, samples_per_floor=25, seed=BUILDING_SEED
    )
    anchor = labeled.pick_labeled_sample(floor=0)
    observed = labeled.strip_labels(keep_record_ids=[anchor.record_id])
    return FisOne(golden_config()).fit_predict(
        observed, anchor.record_id, labeled_floor=0
    )


@pytest.fixture(scope="module")
def golden_refresh():
    """A fixed-seed fit grown by six cloned records and refreshed once."""
    labeled = generate_single_building(
        num_floors=3, samples_per_floor=25, seed=BUILDING_SEED
    )
    anchor = labeled.pick_labeled_sample(floor=0)
    observed = labeled.strip_labels(keep_record_ids=[anchor.record_id])
    fitted = FisOne(golden_config()).fit(observed, anchor.record_id, labeled_floor=0)
    new_records = [
        SignalRecord(f"golden-new-{index}", dict(observed[position].readings))
        for index, (_, position) in enumerate(GOLDEN_REFRESH_SOURCES)
    ]
    return fitted, fitted.refresh(new_records, fine_tune_epochs=1)


class TestGoldenPipeline:
    def test_floor_labels_unchanged(self, golden_result):
        assert golden_result.floor_labels.tolist() == GOLDEN_FLOOR_LABELS

    def test_cluster_order_unchanged(self, golden_result):
        assert [
            int(cluster) for cluster in golden_result.indexing.cluster_order
        ] == GOLDEN_CLUSTER_ORDER

    def test_embeddings_byte_identical(self, golden_result):
        embeddings = golden_result.embeddings
        assert embeddings.shape == (75, 16)
        assert embeddings.dtype == np.float64
        assert np.allclose(
            embeddings[0, :4], GOLDEN_FIRST_ROW_PREFIX, atol=1e-8
        ), "embedding values drifted — the random streams changed"
        if not np.__version__.startswith(GOLDEN_NUMPY_VERSION):
            pytest.skip(
                f"byte-exact hash recorded with numpy {GOLDEN_NUMPY_VERSION}.x, "
                f"running {np.__version__}; value-level checks above still ran"
            )
        digest = hashlib.sha256(np.ascontiguousarray(embeddings).tobytes()).hexdigest()
        assert digest == GOLDEN_EMBEDDINGS_SHA256


class TestGoldenRefresh:
    """Seed-stability of the incremental-refresh path.

    The warm-start fine-tune, the seeded re-clustering, and the
    label-stable floor matching are all driven by the same pinned RNG
    streams, so the refresh of a fixed-seed fit over fixed growth material
    must reproduce these outputs exactly.
    """

    def test_fit_matches_fit_predict_goldens(self, golden_refresh):
        # fit() shares the pipeline run with fit_predict(), so the fitted
        # model must carry the very same golden labels.
        fitted, _ = golden_refresh
        assert fitted.floor_labels.tolist() == GOLDEN_FLOOR_LABELS

    def test_old_record_labels_survive_refresh_identically(self, golden_refresh):
        fitted, result = golden_refresh
        num_old = len(fitted.record_ids)
        refreshed_old = result.fitted.result.floor_labels[:num_old]
        assert refreshed_old.tolist() == GOLDEN_FLOOR_LABELS
        assert np.array_equal(refreshed_old, fitted.floor_labels)
        assert result.report.label_stability == 1.0

    def test_new_record_labels_unchanged(self, golden_refresh):
        _, result = golden_refresh
        num_new = len(GOLDEN_REFRESH_SOURCES)
        new_labels = result.fitted.result.floor_labels[-num_new:]
        assert new_labels.tolist() == GOLDEN_REFRESH_NEW_LABELS
        # ... and each clone landed on its source record's floor.
        assert [floor for floor, _ in GOLDEN_REFRESH_SOURCES] == (
            GOLDEN_REFRESH_NEW_LABELS
        )

    def test_refresh_metadata_pinned(self, golden_refresh):
        _, result = golden_refresh
        assert result.fitted.model_version == 1
        assert result.report.floor_mapping_source == "matched"
        assert result.report.num_new_records == len(GOLDEN_REFRESH_SOURCES)
        assert result.report.num_new_macs == 0


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    labeled = generate_single_building(
        num_floors=3, samples_per_floor=25, seed=BUILDING_SEED
    )
    anchor = labeled.pick_labeled_sample(floor=0)
    observed = labeled.strip_labels(keep_record_ids=[anchor.record_id])
    result = FisOne(golden_config()).fit_predict(observed, anchor.record_id, 0)
    print("GOLDEN_FLOOR_LABELS =", result.floor_labels.tolist())
    print("GOLDEN_CLUSTER_ORDER =", [int(c) for c in result.indexing.cluster_order])
    print(
        "GOLDEN_EMBEDDINGS_SHA256 =",
        hashlib.sha256(np.ascontiguousarray(result.embeddings).tobytes()).hexdigest(),
    )
    print("GOLDEN_FIRST_ROW_PREFIX =", result.embeddings[0, :4].tolist())
