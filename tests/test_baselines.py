"""Tests for the baseline clustering algorithms (MDS, METIS-like, SDCN, DAEGC)."""

import numpy as np
import pytest

from repro.baselines.base import sample_similarity_graph
from repro.baselines.daegc import DAEGCBaseline
from repro.baselines.gcn import GCNLayer, normalized_adjacency
from repro.baselines.mds import MDSBaseline, classical_mds, cosine_distance_matrix
from repro.baselines.metis_like import MetisLikeBaseline, MultilevelPartitioner, _WeightedGraph
from repro.baselines.sdcn import SDCNBaseline, student_t_assignment, target_distribution
from repro.graph.bipartite import BipartiteGraph
from repro.metrics.ari import adjusted_rand_index


class TestBaseUtilities:
    def test_sample_similarity_graph(self, small_building_dataset):
        adjacency = sample_similarity_graph(small_building_dataset)
        n = len(small_building_dataset)
        assert adjacency.shape == (n, n)
        assert np.allclose(adjacency, adjacency.T)
        assert np.all((adjacency >= 0.0) & (adjacency <= 1.0))

    def test_normalized_adjacency(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        normalized = normalized_adjacency(adjacency)
        assert normalized.shape == (2, 2)
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-9

    def test_normalized_adjacency_validation(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.array([[0.0, -1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_gcn_layer_gradient(self):
        rng = np.random.default_rng(0)
        adjacency_hat = normalized_adjacency(rng.random((5, 5)))
        layer = GCNLayer(3, 2, activation="tanh", rng=rng)
        features = rng.standard_normal((5, 3))
        target = rng.standard_normal((5, 2))

        def loss():
            out = layer.forward(adjacency_hat, features)
            return 0.5 * float(np.sum((out - target) ** 2)), out - target

        _, grad_out = loss()
        layer.zero_grad()
        layer.backward(grad_out)
        analytic = layer.grads["W"].copy()
        eps = 1e-6
        original = layer.params["W"][0, 0]
        layer.params["W"][0, 0] = original + eps
        plus, _ = loss()
        layer.params["W"][0, 0] = original - eps
        minus, _ = loss()
        layer.params["W"][0, 0] = original
        assert analytic[0, 0] == pytest.approx((plus - minus) / (2 * eps), rel=1e-4)


class TestMDS:
    def test_cosine_distance_matrix(self):
        features = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        distances = cosine_distance_matrix(features)
        assert distances[0, 2] == pytest.approx(0.0, abs=1e-12)
        assert distances[0, 1] == pytest.approx(1.0)

    def test_classical_mds_recovers_line(self):
        positions = np.array([[0.0], [1.0], [2.0], [5.0]])
        distances = np.abs(positions - positions.T)
        embedding = classical_mds(distances, dim=1)
        recovered = np.abs(embedding - embedding.T).reshape(4, 4)
        assert np.allclose(recovered, distances, atol=1e-8)

    def test_classical_mds_validation(self):
        with pytest.raises(ValueError):
            classical_mds(np.zeros((2, 3)), 1)
        with pytest.raises(ValueError):
            classical_mds(np.zeros((2, 2)), 0)

    def test_fit_predict(self, small_building_dataset):
        baseline = MDSBaseline(embedding_dim=16)
        assignment = baseline.fit_predict(small_building_dataset, num_clusters=3, seed=0)
        assert len(assignment) == len(small_building_dataset)
        assert assignment.num_clusters == 3
        assert baseline.embeddings().shape[0] == len(small_building_dataset)

    def test_validation(self):
        with pytest.raises(ValueError):
            MDSBaseline(embedding_dim=0)


class TestMetisLike:
    def test_partition_two_cliques(self):
        # Two dense cliques weakly connected: the partitioner must separate them.
        graph = _WeightedGraph(8)
        for group in (range(0, 4), range(4, 8)):
            nodes = list(group)
            for i in nodes:
                for j in nodes:
                    if i < j:
                        graph.add_edge(i, j, 10.0)
        graph.add_edge(3, 4, 0.1)
        parts = MultilevelPartitioner(num_parts=2, seed=0).partition(graph)
        assert len(set(parts[:4])) == 1
        assert len(set(parts[4:])) == 1
        assert parts[0] != parts[7]

    def test_partition_single_part(self):
        graph = _WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        parts = MultilevelPartitioner(num_parts=1).partition(graph)
        assert np.all(parts == 0)

    def test_partition_covers_all_parts(self, small_building_dataset):
        baseline = MetisLikeBaseline()
        assignment = baseline.fit_predict(small_building_dataset, num_clusters=3, seed=0)
        assert assignment.num_clusters == 3
        assert np.unique(assignment.labels).size == 3

    def test_from_bipartite(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        weighted = _WeightedGraph.from_bipartite(graph)
        assert weighted.num_nodes == graph.num_nodes
        assert sum(len(adj) for adj in weighted.adjacency) // 2 == graph.num_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(num_parts=0)
        with pytest.raises(ValueError):
            MultilevelPartitioner(num_parts=2, balance_factor=0.9)


class TestDeepBaselines:
    def test_student_t_and_target_distribution(self):
        latent = np.array([[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]])
        centers = np.array([[0.0, 0.0], [5.0, 5.0]])
        q = student_t_assignment(latent, centers)
        assert q.shape == (3, 2)
        assert np.allclose(q.sum(axis=1), 1.0)
        assert q[0, 0] > q[0, 1]
        assert q[2, 1] > q[2, 0]
        p = target_distribution(q)
        assert np.allclose(p.sum(axis=1), 1.0)
        # sharpening: the dominant assignment becomes even more dominant
        assert p[0, 0] >= q[0, 0]

    @pytest.mark.parametrize("baseline_cls", [SDCNBaseline, DAEGCBaseline])
    def test_fit_predict_shapes(self, baseline_cls, small_building_dataset):
        baseline = baseline_cls(pretrain_epochs=5, train_epochs=5, embedding_dim=8, hidden_dim=16)
        assignment = baseline.fit_predict(small_building_dataset, num_clusters=3, seed=0)
        assert len(assignment) == len(small_building_dataset)
        assert assignment.num_clusters == 3
        assert np.unique(assignment.labels).size == 3  # no empty clusters
        assert baseline.embeddings() is not None

    @pytest.mark.parametrize("baseline_cls", [SDCNBaseline, DAEGCBaseline])
    def test_better_than_random(self, baseline_cls, small_building_dataset):
        baseline = baseline_cls(pretrain_epochs=10, train_epochs=10, embedding_dim=8, hidden_dim=16)
        assignment = baseline.fit_predict(small_building_dataset, num_clusters=3, seed=0)
        truth = small_building_dataset.ground_truth
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 3, size=len(truth))
        assert adjusted_rand_index(truth, assignment.labels) > adjusted_rand_index(
            truth, random_labels
        )
