"""Tests for hierarchical clustering, K-means and cluster-assignment helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import fcluster, linkage

from repro.clustering.assignments import (
    ClusterAssignment,
    cluster_sizes,
    records_by_cluster,
    relabel_clusters_by_size,
)
from repro.clustering.hierarchical import (
    HierarchicalClustering,
    average_linkage_labels,
    ward_linkage_labels,
)
from repro.clustering.kmeans import KMeans, kmeans_labels
from repro.metrics.ari import adjusted_rand_index


def make_blobs(centers, points_per_cluster=20, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(center + spread * rng.standard_normal((points_per_cluster, len(center))))
        labels.extend([index] * points_per_cluster)
    return np.vstack(points), np.array(labels)


class TestHierarchical:
    def test_recovers_well_separated_blobs(self):
        points, truth = make_blobs(
            [np.array([0.0, 0.0]), np.array([10.0, 0.0]), np.array([0.0, 10.0])]
        )
        for linkage_name in ("average", "ward"):
            labels = HierarchicalClustering(3, linkage=linkage_name).fit_predict(points)
            assert adjusted_rand_index(truth, labels) == 1.0

    def test_matches_scipy_average_linkage(self):
        points, _ = make_blobs(
            [np.array([0.0, 0.0]), np.array([4.0, 1.0]), np.array([1.0, 5.0])],
            points_per_cluster=12,
            spread=0.8,
            seed=3,
        )
        ours = average_linkage_labels(points, 3)
        scipy_labels = fcluster(linkage(points, method="average"), t=3, criterion="maxclust")
        assert adjusted_rand_index(scipy_labels, ours) == 1.0

    def test_matches_scipy_ward_linkage(self):
        points, _ = make_blobs(
            [np.array([0.0, 0.0]), np.array([4.0, 1.0]), np.array([1.0, 5.0])],
            points_per_cluster=12,
            spread=0.8,
            seed=4,
        )
        ours = ward_linkage_labels(points, 3)
        scipy_labels = fcluster(linkage(points, method="ward"), t=3, criterion="maxclust")
        assert adjusted_rand_index(scipy_labels, ours) == 1.0

    def test_num_clusters_respected(self):
        points, _ = make_blobs([np.array([0.0, 0.0]), np.array([5.0, 5.0])])
        for k in (2, 3, 5):
            labels = HierarchicalClustering(k, linkage="ward").fit_predict(points)
            assert np.unique(labels).size == k

    def test_trivial_cases(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert np.unique(HierarchicalClustering(3).fit_predict(points)).size == 3
        with pytest.raises(ValueError):
            HierarchicalClustering(5).fit_predict(points)

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalClustering(0)
        with pytest.raises(ValueError):
            HierarchicalClustering(2, linkage="single")
        with pytest.raises(ValueError):
            HierarchicalClustering(2).fit_predict(np.zeros(5))

    def test_merge_history_recorded(self):
        points, _ = make_blobs([np.array([0.0, 0.0]), np.array([5.0, 5.0])], points_per_cluster=5)
        model = HierarchicalClustering(2)
        model.fit_predict(points)
        assert len(model.merge_history_) == len(points) - 2

    @settings(max_examples=15, deadline=None)
    @given(
        n_points=st.integers(min_value=4, max_value=30),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_partition_is_valid(self, n_points, k, seed):
        if k > n_points:
            k = n_points
        points = np.random.default_rng(seed).standard_normal((n_points, 3))
        labels = HierarchicalClustering(k, linkage="ward").fit_predict(points)
        assert labels.shape == (n_points,)
        assert np.unique(labels).size == k
        assert labels.min() >= 0 and labels.max() < k


class TestKMeans:
    def test_recovers_blobs(self):
        points, truth = make_blobs(
            [np.array([0.0, 0.0]), np.array([8.0, 0.0]), np.array([0.0, 8.0])]
        )
        labels = KMeans(3, seed=0).fit_predict(points)
        assert adjusted_rand_index(truth, labels) == 1.0

    def test_inertia_and_centroids_set(self):
        points, _ = make_blobs([np.array([0.0, 0.0]), np.array([8.0, 0.0])])
        model = KMeans(2, seed=0)
        model.fit_predict(points)
        assert model.centroids_.shape == (2, 2)
        assert model.inertia_ >= 0.0

    def test_k_equal_n(self):
        points = np.arange(8, dtype=float).reshape(4, 2)
        labels = KMeans(4, seed=0).fit_predict(points)
        assert np.unique(labels).size == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2).fit_predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            KMeans(2).fit_predict(np.zeros(4))

    def test_wrapper(self):
        points, _ = make_blobs([np.array([0.0, 0.0]), np.array([8.0, 0.0])])
        assert np.unique(kmeans_labels(points, 2)).size == 2

    def test_reproducible_with_seed(self):
        points, _ = make_blobs([np.array([0.0, 0.0]), np.array([8.0, 0.0])], spread=1.5)
        a = KMeans(2, seed=5).fit_predict(points)
        b = KMeans(2, seed=5).fit_predict(points)
        assert np.array_equal(a, b)


class TestAssignments:
    def test_members_and_sizes(self):
        assignment = ClusterAssignment(labels=np.array([0, 1, 1, 2, 2, 2]), num_clusters=3)
        assert cluster_sizes(assignment) == {0: 1, 1: 2, 2: 3}
        assert assignment.members(1).tolist() == [1, 2]
        assert len(assignment) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterAssignment(labels=np.array([0, 5]), num_clusters=2)
        with pytest.raises(ValueError):
            ClusterAssignment(labels=np.array([[0], [1]]), num_clusters=2)

    def test_remap(self):
        assignment = ClusterAssignment(labels=np.array([0, 1, 1]), num_clusters=2)
        remapped = assignment.remap({0: 1, 1: 0})
        assert remapped.labels.tolist() == [1, 0, 0]
        with pytest.raises(ValueError):
            assignment.remap({0: 1})

    def test_records_by_cluster(self, tiny_dataset):
        assignment = ClusterAssignment(labels=np.array([0, 0, 1, 1, 1]), num_clusters=2)
        groups = records_by_cluster(tiny_dataset, assignment)
        assert [record.record_id for record in groups[0]] == ["r0", "r1"]
        assert len(groups[1]) == 3

    def test_records_by_cluster_length_mismatch(self, tiny_dataset):
        assignment = ClusterAssignment(labels=np.array([0, 1]), num_clusters=2)
        with pytest.raises(ValueError):
            records_by_cluster(tiny_dataset, assignment)

    def test_relabel_by_size(self):
        assignment = ClusterAssignment(labels=np.array([2, 2, 2, 0, 1, 1]), num_clusters=3)
        relabeled = relabel_clusters_by_size(assignment)
        sizes = cluster_sizes(relabeled)
        assert sizes[0] >= sizes[1] >= sizes[2]
