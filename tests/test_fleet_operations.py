"""Live fleet operations: dynamic membership, replication, autoscaling.

The contract under test: any membership change — a shard joining under
load, a planned drain with state handoff, a replicated primary dying —
is invisible to label traffic.  Labels stay bit-identical to a
single-process :class:`FleetServer` before, during, and after the change,
replicated failover promotes a *warm* follower (no refit, no cold load),
and the autoscaler grows and shrinks the fleet from its own pressure
signals within policy bounds.
"""

from __future__ import annotations

import os
import re
import signal
import threading
import time

import pytest

from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    Autoscaler,
    AutoscalePolicy,
    BuildingRegistry,
    FleetServer,
    LabelRequest,
    ShardedFleetServer,
)
from repro.simulate import generate_single_building
from repro.simulate.fleet import LoadProfile, generate_label_traffic, replay_traffic
from repro.telemetry import (
    EVENT_SHARD_DRAINED,
    EVENT_SHARD_JOINED,
)

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)

BUILDING_IDS = ("fops-a", "fops-b", "fops-c", "fops-d")


@pytest.fixture(scope="module")
def ops_store(tmp_path_factory):
    """Four small fitted buildings persisted to one store, plus streams."""
    store = tmp_path_factory.mktemp("ops-store")
    registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG, capacity=4)
    streams = {}
    for index, building_id in enumerate(BUILDING_IDS):
        labeled = generate_single_building(
            num_floors=3, samples_per_floor=25, seed=90 + index
        )
        train, stream = labeled.holdout_split(train_per_floor=18)
        anchor = train.pick_labeled_sample(floor=0)
        observed = train.strip_labels(keep_record_ids=[anchor.record_id])
        registry.register(building_id, observed, anchor_record_id=anchor.record_id)
        registry.get(building_id)
        streams[building_id] = [record.without_floor() for record in stream]
    return store, streams


def make_requests(streams, chunk=5):
    requests = []
    for building_id, stream in streams.items():
        for start in range(0, len(stream), chunk):
            block = stream[start : start + chunk]
            if block:
                requests.append(
                    LabelRequest(
                        request_id=f"req-{len(requests)}",
                        building_id=building_id,
                        records=tuple(block),
                    )
                )
    return requests


def label_tuples(responses):
    return [
        (label.record_id, label.floor, label.confidence, label.known_mac_fraction)
        for response in responses
        for label in response.labels
    ]


def serve_sequentially(submit, requests):
    """One request at a time: pins batch composition for bit-identity."""
    return [submit(request).result(timeout=120) for request in requests]


def fleet_submit(fleet):
    return lambda request: fleet.submit(
        request.building_id, request.records, request.request_id
    )


@pytest.fixture(scope="module")
def reference_labels(ops_store):
    """Single-process FleetServer labels: the bit-identity ground truth."""
    store, streams = ops_store
    registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG, mmap=True)
    with FleetServer(registry) as server:
        responses = serve_sequentially(
            lambda request: server.submit(request.building_id, request.records),
            make_requests(streams),
        )
    return label_tuples(responses)


def wait_until(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestLiveJoin:
    def test_join_under_load_stays_bit_identical(self, ops_store, reference_labels):
        store, streams = ops_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store,
            num_workers=2,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
        ) as fleet:
            assert label_tuples(
                serve_sequentially(fleet_submit(fleet), requests)
            ) == reference_labels

            # Join a third shard while traffic is in flight.  Sequential
            # submits pin batch composition, so even the requests that land
            # mid-join must come back bit-identical.
            background = {}

            def pump():
                background["responses"] = serve_sequentially(
                    fleet_submit(fleet), requests
                )

            pump_thread = threading.Thread(target=pump)
            pump_thread.start()
            entry = fleet.join_shard(timeout_s=120.0)
            pump_thread.join(timeout=300)
            assert not pump_thread.is_alive()

            assert entry == 2
            with fleet._ring_lock:
                assert set(fleet._ring.entries) == {0, 1, 2}
            assert label_tuples(background["responses"]) == reference_labels
            joined = [
                e for e in fleet.fleet_events() if e.kind == EVENT_SHARD_JOINED
            ]
            assert joined and joined[0].details_dict["entry"] == "2"

            # After the join the grown fleet still labels bit-identically,
            # and the newcomer actually takes traffic for its buildings.
            assert label_tuples(
                serve_sequentially(fleet_submit(fleet), requests)
            ) == reference_labels
            owned_by_new = [
                b for b in BUILDING_IDS if fleet.shard_for(b) == entry
            ]
            if owned_by_new:  # ring-dependent, but warmth must hold when so
                stats = fleet.stats()
                new_shard = [s for s in stats.shards if s.shard == 2]
                assert new_shard and new_shard[0].server.num_requests > 0

    def test_join_validates_transport_and_state(self, ops_store):
        store, _ = ops_store
        fleet = ShardedFleetServer(store, num_workers=1, config=FAST_CONFIG)
        with pytest.raises(RuntimeError, match="TCP transport"):
            fleet.join_shard()
        tcp_fleet = ShardedFleetServer(
            store, num_workers=1, config=FAST_CONFIG, transport="tcp"
        )
        with pytest.raises(RuntimeError, match="not running"):
            tcp_fleet.join_shard()


class TestDrain:
    def test_drain_hands_off_state_and_stays_bit_identical(
        self, ops_store, reference_labels
    ):
        store, streams = ops_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store,
            num_workers=3,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
        ) as fleet:
            assert label_tuples(
                serve_sequentially(fleet_submit(fleet), requests)
            ) == reference_labels
            # Drain the owner of a served building: its registry holds hot
            # models and buffered drift records, all of which must move.
            entry = fleet.shard_for(BUILDING_IDS[0])
            summary = fleet.drain_shard(entry, timeout_s=60.0)
            assert summary["entry"] == entry
            assert summary["handed_off_buildings"] > 0
            assert summary["handed_off_records"] > 0
            with fleet._ring_lock:
                assert entry not in fleet._ring.entries
                assert len(fleet._ring.entries) == 2
            drained = [
                e for e in fleet.fleet_events() if e.kind == EVENT_SHARD_DRAINED
            ]
            assert drained and drained[0].details_dict["handed_off"] > 0
            assert label_tuples(
                serve_sequentially(fleet_submit(fleet), requests)
            ) == reference_labels

    def test_sigkill_during_drain_still_completes(self, ops_store, reference_labels):
        store, streams = ops_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store,
            num_workers=3,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
            heartbeat_interval_s=0.1,
            heartbeat_miss_threshold=2,
        ) as fleet:
            fleet.serve(requests[:3])
            victim = fleet._shards[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            # The drain of an already-dead shard hands nothing off but must
            # still complete the removal and leave the fleet serving.
            summary = fleet.drain_shard(victim.entry, timeout_s=30.0)
            assert summary["handed_off_records"] == 0
            with fleet._ring_lock:
                assert victim.entry not in fleet._ring.entries
            assert fleet.running
            assert label_tuples(
                serve_sequentially(fleet_submit(fleet), requests)
            ) == reference_labels

    def test_drain_refuses_last_shard_and_unknown_entries(self, ops_store):
        store, streams = ops_store
        with ShardedFleetServer(
            store, num_workers=1, config=FAST_CONFIG, transport="tcp"
        ) as fleet:
            with pytest.raises(ValueError, match="last shard"):
                fleet.drain_shard(0)
            with pytest.raises(ValueError, match="not part of the fleet"):
                fleet.drain_shard(99)
            assert fleet.running


class TestReplication:
    def test_replicated_failover_promotes_warm_follower_without_refit(
        self, ops_store, reference_labels
    ):
        store, streams = ops_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store,
            num_workers=3,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
            replication=2,
            heartbeat_interval_s=0.1,
            heartbeat_miss_threshold=2,
        ) as fleet:
            assert label_tuples(
                serve_sequentially(fleet_submit(fleet), requests)
            ) == reference_labels
            building = BUILDING_IDS[0]
            with fleet._ring_lock:
                primary, follower = fleet._ring.shards_for(building, 2)
            victim = fleet._shard_by_entry[primary]
            os.kill(victim.process.pid, signal.SIGKILL)
            assert wait_until(
                lambda: primary not in fleet._ring.entries
            ), "dead primary never left the ring"
            # Ring geometry: the follower IS the new primary.
            assert fleet.shard_for(building) == follower

            # Let the post-failover follower re-warm settle (two identical
            # snapshots 0.3s apart), then pin the per-shard load counters.
            def loads():
                return {
                    s.shard: s.registry.loads for s in fleet.stats().shards
                }

            def settled():
                first = loads()
                time.sleep(0.3)
                return first == loads()

            assert wait_until(settled, timeout_s=15.0, interval_s=0.1)
            before = loads()
            settled = serve_sequentially(fleet_submit(fleet), requests)
            assert label_tuples(settled) == reference_labels
            after_stats = fleet.stats()
            after = {s.shard: s.registry.loads for s in after_stats.shards}
            # Warm-follower promotion: the full post-failover pass paid no
            # cold loads and — the acceptance criterion — no refits.
            assert after == before
            assert all(s.registry.fits == 0 for s in after_stats.shards)

    def test_replication_validates_bounds(self, ops_store):
        store, _ = ops_store
        with pytest.raises(ValueError, match="replication"):
            ShardedFleetServer(store, num_workers=2, replication=3)
        with pytest.raises(ValueError, match="replication must be >= 1"):
            ShardedFleetServer(store, num_workers=2, replication=0)

    def test_read_fanout_serves_from_follower_under_overload(self, ops_store):
        store, streams = ops_store
        building = BUILDING_IDS[0]
        stream = streams[building]
        requests = [
            LabelRequest(
                request_id=f"hot-{i}",
                building_id=building,
                records=tuple(stream[start : start + 2]),
            )
            for i, start in enumerate(range(0, len(stream) - 1, 2))
        ]
        with ShardedFleetServer(
            store,
            num_workers=2,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
            replication=2,
            read_fanout=True,
            max_inflight=1,
        ) as fleet:
            responses = fleet.serve(requests)
            assert [r.request_id for r in responses] == [
                r.request_id for r in requests
            ]
            stats = fleet.stats()
            served = {s.shard: s.server.num_requests for s in stats.shards}
            exposition = fleet.render_prometheus()
        # A single hot building overran its primary's one-slot window, so
        # the follower took overflow traffic: both shards served it.
        assert len(served) == 2 and all(count > 0 for count in served.values())
        fanout = re.search(
            r"^fleet_replica_fanout_total(?:\{[^}]*\})? (\d+)",
            exposition,
            re.MULTILINE,
        )
        assert fanout is not None and int(fanout.group(1)) > 0


class TestStatsRace:
    def test_stats_survive_concurrent_membership_changes(self, ops_store):
        """Regression: stats()/latency_summary() raced ring resizes.

        A background thread hammers every aggregation entry point while
        the main thread kills, joins, and drains shards; no call may leak
        an exception out of the observability path.
        """
        store, streams = ops_store
        requests = make_requests(streams)
        errors = []
        stop = threading.Event()
        with ShardedFleetServer(
            store,
            num_workers=3,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
            heartbeat_interval_s=0.1,
            heartbeat_miss_threshold=2,
        ) as fleet:
            fleet.serve(requests[:4])

            def hammer():
                while not stop.is_set():
                    try:
                        fleet.stats(timeout_s=10.0)
                        fleet.latency_summary(timeout_s=10.0)
                        fleet.pressure_snapshot()
                    except Exception as error:  # noqa: BLE001 - the assertion
                        errors.append(error)
                        return
                    time.sleep(0.002)

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                victim = fleet._shards[0]
                os.kill(victim.process.pid, signal.SIGKILL)
                wait_until(lambda: victim.entry not in fleet._ring.entries)
                entry = fleet.join_shard(timeout_s=120.0)
                fleet.drain_shard(entry, timeout_s=60.0)
                fleet.serve(requests[:2])
            finally:
                stop.set()
                thread.join(timeout=30)
            assert not thread.is_alive()
        assert errors == []


class TestAutoscaler:
    def test_grow_and_shrink_under_load_generator(self, ops_store):
        store, streams = ops_store
        traffic = generate_label_traffic(
            streams,
            num_requests=60,
            profile=LoadProfile(arrival_rate_hz=None),
            seed=7,
        )
        policy = AutoscalePolicy(
            min_shards=1,
            max_shards=2,
            scale_up_pressure=0.5,
            scale_down_pressure=0.1,
            scale_up_cooldown_s=0.0,
            scale_down_cooldown_s=0.0,
        )
        with ShardedFleetServer(
            store,
            num_workers=1,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
            max_inflight=2,
        ) as fleet:
            autoscaler = Autoscaler(fleet, policy=policy, interval_s=60.0, seed=0)
            replayed = {}

            def pump():
                replayed["futures"], replayed["rejected"] = replay_traffic(
                    fleet.submit, traffic
                )

            thread = threading.Thread(target=pump)
            thread.start()
            try:
                assert wait_until(
                    lambda: autoscaler.evaluate_once().action == "grow"
                    or autoscaler.stats.grows > 0,
                    timeout_s=120.0,
                    interval_s=0.01,
                ), "saturating load never triggered a grow"
                assert fleet.num_live_shards == 2
            finally:
                thread.join(timeout=300)
            assert not thread.is_alive()
            for future in replayed["futures"]:
                future.result(timeout=120)

            # Traffic is gone: pressure decays to zero and the autoscaler
            # shrinks back to the floor.
            assert wait_until(
                lambda: autoscaler.evaluate_once().action == "shrink"
                or autoscaler.stats.shrinks > 0,
                timeout_s=60.0,
                interval_s=0.05,
            ), "idle fleet never triggered a shrink"
            assert fleet.num_live_shards == 1

            stats = autoscaler.stats
            assert stats.grows >= 1 and stats.shrinks >= 1
            kinds = {event.kind for event in fleet.fleet_events()}
            assert EVENT_SHARD_JOINED in kinds
            assert EVENT_SHARD_DRAINED in kinds

    def test_policy_validation(self, ops_store):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_shards=3, max_shards=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(scale_down_pressure=0.9, scale_up_pressure=0.8)
        with pytest.raises(ValueError):
            AutoscalePolicy(p99_budget_s=0.0)

    def test_daemon_lifecycle_and_hold_reasons(self, ops_store):
        store, _ = ops_store
        with ShardedFleetServer(
            store, num_workers=1, config=FAST_CONFIG, transport="tcp"
        ) as fleet:
            autoscaler = Autoscaler(
                fleet,
                policy=AutoscalePolicy(min_shards=1, max_shards=1),
                interval_s=0.05,
                seed=0,
            )
            with autoscaler:
                assert autoscaler.is_running
                decision = autoscaler.evaluate_once()
            assert not autoscaler.is_running
            assert decision.action == "hold"
            assert decision.num_shards == 1
            assert autoscaler.stats.ticks >= 1
