"""Property-based tests (hypothesis) for the online serving path.

The online path is deterministic — a frozen encoder, a centroid matmul, a
softmax — so strong exact properties must hold for *any* record batch, not
just the handful of examples the unit tests pin:

* ``label_one(r)`` equals ``label([r])[0]`` exactly;
* labeling is batch-order equivariant: permuting the batch permutes the
  labels and changes nothing else;
* every confidence lies in ``[0, 1]``, and a record with no known MAC gets
  exactly 0.0;
* ``known_mac_fraction`` equals a hand-computed count of vocabulary hits.

Records are generated from a mixed MAC pool (training vocabulary plus
never-seen MACs) with arbitrary valid RSS values, under hypothesis'
default profile.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FisOne, FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import OnlineFloorLabeler
from repro.signals.record import SignalRecord
from repro.simulate.collector import CollectionConfig
from repro.simulate.generators import BuildingConfig, generate_building_dataset

#: Fast configuration for the single fitted model the whole module shares.
PROPERTY_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(8, 4)),
    num_epochs=2,
    max_pairs_per_epoch=6_000,
    inference_passes=1,
    inference_sample_sizes=(12, 6),
    seed=0,
)

#: MACs guaranteed never to collide with the simulator's vocabulary (the
#: simulator always sets the locally-administered bit pattern ``x2`` etc.;
#: these use an impossible first octet text form).
UNKNOWN_MACS = [f"zz:zz:zz:00:00:{i:02x}" for i in range(8)]


@pytest.fixture(scope="module")
def labeler() -> OnlineFloorLabeler:
    dataset = generate_building_dataset(
        BuildingConfig(
            num_floors=3,
            aps_per_floor=8,
            width_m=60.0,
            depth_m=40.0,
            collection=CollectionConfig(
                samples_per_floor=15,
                scans_per_contributor=8,
                sensitivity_dbm=-90.0,
            ),
            building_id="property",
        ),
        seed=13,
    )
    anchor = dataset.pick_labeled_sample(floor=0)
    observed = dataset.strip_labels(keep_record_ids=[anchor.record_id])
    fitted = FisOne(PROPERTY_CONFIG).fit(observed, anchor.record_id)
    return OnlineFloorLabeler(fitted)


def _mac_pool(labeler: OnlineFloorLabeler) -> list:
    return list(labeler.fitted.encoder.mac_vocabulary[:16]) + UNKNOWN_MACS


@st.composite
def readings_strategy(draw, macs):
    """A non-empty readings dict over the mixed known/unknown MAC pool."""
    chosen = draw(
        st.lists(st.sampled_from(macs), min_size=1, max_size=6, unique=True)
    )
    return {
        mac: draw(
            st.floats(min_value=-119.9, max_value=-1.0, allow_nan=False)
        )
        for mac in chosen
    }


@st.composite
def batch_strategy(draw, macs, max_size=8):
    """A batch of records with unique ids over the mixed MAC pool."""
    all_readings = draw(
        st.lists(readings_strategy(macs), min_size=1, max_size=max_size)
    )
    return [
        SignalRecord(f"prop-{index}", readings)
        for index, readings in enumerate(all_readings)
    ]


@settings(deadline=None)
@given(data=st.data())
def test_label_one_equals_singleton_batch(labeler, data):
    readings = data.draw(readings_strategy(_mac_pool(labeler)))
    record = SignalRecord("single", readings)
    assert labeler.label_one(record) == labeler.label([record])[0]


@settings(deadline=None)
@given(data=st.data())
def test_batch_order_equivariance(labeler, data):
    records = data.draw(batch_strategy(_mac_pool(labeler)))
    permutation = data.draw(st.permutations(range(len(records))))
    straight = labeler.label(records)
    permuted = labeler.label([records[i] for i in permutation])
    assert permuted == [straight[i] for i in permutation]


@settings(deadline=None)
@given(data=st.data())
def test_confidences_and_floors_in_range(labeler, data):
    records = data.draw(batch_strategy(_mac_pool(labeler)))
    labels = labeler.label(records)
    assert len(labels) == len(records)
    for label in labels:
        assert 0.0 <= label.confidence <= 1.0
        assert 0 <= label.floor < labeler.num_floors
        if label.known_mac_fraction == 0.0:
            assert label.confidence == 0.0


@settings(deadline=None)
@given(data=st.data())
def test_known_mac_fraction_is_exact(labeler, data):
    records = data.draw(batch_strategy(_mac_pool(labeler)))
    vocabulary = set(labeler.fitted.encoder.mac_vocabulary)
    labels = labeler.label(records)
    for record, label in zip(records, labels):
        expected = sum(
            1 for mac in record.readings if mac in vocabulary
        ) / len(record.readings)
        assert label.known_mac_fraction == pytest.approx(expected)
        assert label.record_id == record.record_id


@settings(deadline=None)
@given(data=st.data())
def test_labeling_is_deterministic(labeler, data):
    records = data.draw(batch_strategy(_mac_pool(labeler), max_size=4))
    assert labeler.label(records) == labeler.label(records)
