"""Unit tests for the columnar RecordBatch core and its integrations.

Covers construction and validation, slicing/concat, the io loaders'
batch-native paths, vectorised graph assembly from batch columns
(``CSRGraph.from_batch`` / ``BipartiteGraph.add_batch``), and the serving
layer carrying batches end-to-end (labeler, registry buffer, fleet server
coalescing, refresh).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import FisOne, FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.graph.bipartite import BipartiteGraph
from repro.graph.csr import CSRGraph
from repro.serving import BuildingRegistry, FleetServer, OnlineFloorLabeler
from repro.signals.batch import MacVocab, RecordBatch
from repro.signals.io import (
    batch_from_json,
    dataset_from_json,
    dataset_to_json,
    load_batch_csv,
    load_dataset_csv,
    save_dataset_csv,
)
from repro.signals.record import InvalidRecordError, SignalRecord
from repro.simulate import generate_building_batch, generate_single_building
from repro.simulate.generators import office_building_config

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(8, 4)),
    num_epochs=2,
    max_pairs_per_epoch=6_000,
    inference_passes=1,
    inference_sample_sizes=(12, 6),
    seed=0,
)


def _records():
    return [
        SignalRecord(
            "r1",
            {"aa": -50.0, "bb": -60.0},
            floor=1,
            position=(1.0, 2.0),
            device_id="dev1",
            timestamp=3.0,
        ),
        SignalRecord("r2", {"bb": -70.0}),
        SignalRecord("r3", {"cc": -80.0, "aa": -40.0, "dd": -90.0}),
    ]


@pytest.fixture(scope="module")
def fitted():
    labeled = generate_single_building(num_floors=3, samples_per_floor=18, seed=3)
    anchor = labeled.pick_labeled_sample(floor=0)
    observed = labeled.strip_labels(keep_record_ids=[anchor.record_id])
    return FisOne(FAST_CONFIG).fit(observed, anchor.record_id)


@pytest.fixture(scope="module")
def traffic():
    # Fresh ids: the simulator reuses record-id patterns across seeds, and
    # ids colliding with the fitted model's training records would be
    # (correctly) skipped by the registry's refresh buffer.
    labeled = generate_single_building(num_floors=3, samples_per_floor=18, seed=4)
    return [
        SignalRecord(f"traffic-{index}", dict(record.readings))
        for index, record in enumerate(labeled)
    ]


class TestMacVocab:
    def test_interning_is_idempotent_and_ordered(self):
        vocab = MacVocab()
        assert vocab.intern("aa") == 0
        assert vocab.intern("bb") == 1
        assert vocab.intern("aa") == 0
        assert vocab.macs == ["aa", "bb"]
        assert "aa" in vocab and "cc" not in vocab
        assert vocab.mac_of(1) == "bb"

    def test_intern_many_returns_aligned_ids(self):
        vocab = MacVocab(["aa"])
        ids = vocab.intern_many(["bb", "aa", "cc", "bb"])
        assert ids.tolist() == [1, 0, 2, 1]

    def test_empty_mac_rejected(self):
        with pytest.raises(InvalidRecordError):
            MacVocab().intern("")
        with pytest.raises(InvalidRecordError):
            MacVocab().intern_many(["aa", ""])

    def test_empty_vocab_instance_is_still_used(self):
        vocab = MacVocab()
        batch = RecordBatch.from_records(_records(), vocab=vocab)
        assert batch.vocab is vocab
        assert len(vocab) == 4


class TestRecordBatch:
    def test_columns_and_counts(self):
        batch = RecordBatch.from_records(_records())
        assert len(batch) == 3
        assert batch.num_readings == 6
        assert batch.reading_counts.tolist() == [2, 1, 3]
        assert batch.indptr.tolist() == [0, 2, 3, 6]
        assert batch.floor_of(0) == 1 and batch.floor_of(1) is None
        assert batch.readings_of(2) == {"cc": -80.0, "aa": -40.0, "dd": -90.0}

    def test_arrays_are_frozen(self):
        batch = RecordBatch.from_records(_records())
        with pytest.raises(ValueError):
            batch.rss[0] = -1.0
        with pytest.raises(ValueError):
            batch.indptr[0] = 1

    def test_getitem_int_and_slice(self):
        records = _records()
        batch = RecordBatch.from_records(records)
        assert batch[1] == records[1]
        assert batch[1:].to_records() == records[1:]
        assert list(batch) == records

    def test_negative_indices_are_sequence_like(self):
        records = _records()
        batch = RecordBatch.from_records(records)
        assert batch[-1] == records[-1]
        assert batch[-2] == records[-2]
        assert batch.readings_of(-3) == dict(records[0].readings)
        assert batch.floor_of(-3) == records[0].floor
        with pytest.raises(IndexError):
            batch.record(3)
        with pytest.raises(IndexError):
            batch.record(-4)

    def test_concat_requires_shared_vocab(self):
        vocab = MacVocab()
        first = RecordBatch.from_records(_records()[:1], vocab=vocab)
        second = RecordBatch.from_records(_records()[1:], vocab=vocab)
        merged = RecordBatch.concat([first, second])
        assert merged.to_records() == _records()
        foreign = RecordBatch.from_records(_records()[1:])
        with pytest.raises(ValueError, match="vocabular"):
            RecordBatch.concat([first, foreign])
        with pytest.raises(ValueError):
            RecordBatch.concat([])

    def test_validation_errors(self):
        with pytest.raises(InvalidRecordError, match="at least one reading"):
            RecordBatch.from_json_payload([{"record_id": "r1", "readings": {}}])
        with pytest.raises(InvalidRecordError, match="outside"):
            RecordBatch.from_json_payload(
                [{"record_id": "r1", "readings": {"aa": -150.0}}]
            )
        with pytest.raises(InvalidRecordError):
            RecordBatch.from_json_payload(
                [{"record_id": "", "readings": {"aa": -50.0}}]
            )

    def test_nan_rss_rejected(self):
        # json.loads accepts bare NaN, so the batch validator must reject it
        # the way SignalRecord always has (a NaN would otherwise sail
        # through every downstream min()/comparison guard).
        with pytest.raises(InvalidRecordError, match="outside"):
            RecordBatch.from_json_payload(
                [{"record_id": "r1", "readings": {"aa": float("nan")}}]
            )

    def test_negative_floor_rejected_not_aliased(self):
        # floor=-1 must fail loudly, not silently alias the NO_FLOOR
        # sentinel (SignalRecord contract).
        with pytest.raises(InvalidRecordError, match="floor index"):
            RecordBatch.from_json_payload(
                [{"record_id": "r1", "readings": {"aa": -50.0}, "floor": -1}]
            )
        rows = [
            {"record_id": "r1", "mac": "aa", "rss": "-50.0", "floor": "-1",
             "x": "", "y": "", "device_id": "", "timestamp": ""}
        ]
        with pytest.raises(InvalidRecordError, match="floor index"):
            RecordBatch.from_csv_rows(rows)

    def test_empty_batch(self):
        batch = RecordBatch.from_records([])
        assert len(batch) == 0
        assert batch.to_records() == []
        assert batch.take([]).num_readings == 0


class TestBatchIo:
    def test_batch_from_json_matches_dataset_loader(self, traffic):
        labeled = generate_single_building(num_floors=2, samples_per_floor=10, seed=9)
        payload = dataset_to_json(labeled)
        batch = batch_from_json(payload)
        dataset = dataset_from_json(payload)
        assert batch.to_records() == list(dataset.records)

    def test_batch_from_json_rejects_bad_version(self):
        with pytest.raises(ValueError, match="format version"):
            batch_from_json({"format_version": 99, "records": []})

    def test_load_batch_csv_round_trip(self, tmp_path):
        labeled = generate_single_building(num_floors=2, samples_per_floor=8, seed=2)
        path = tmp_path / "building.csv"
        save_dataset_csv(labeled, path)
        batch = load_batch_csv(path)
        dataset = load_dataset_csv(path)
        assert batch.to_records() == list(dataset.records)
        assert batch.to_records() == list(labeled.records)


class TestGraphFromBatch:
    def test_from_batch_identical_to_from_dataset(self):
        labeled = generate_single_building(num_floors=3, samples_per_floor=12, seed=6)
        from_dataset = CSRGraph.from_dataset(labeled)
        from_batch = CSRGraph.from_batch(labeled.to_batch())
        assert np.array_equal(from_dataset.indptr, from_batch.indptr)
        assert np.array_equal(from_dataset.indices, from_batch.indices)
        assert np.array_equal(from_dataset.weights, from_batch.weights)
        assert np.array_equal(from_dataset.kinds, from_batch.kinds)
        assert from_dataset.keys.tolist() == from_batch.keys.tolist()

    def test_from_batch_rejects_empty(self):
        with pytest.raises(ValueError, match="empty batch"):
            CSRGraph.from_batch(RecordBatch.from_records([]))

    def test_add_batch_identical_to_add_record(self):
        records = _records()
        by_record = BipartiteGraph()
        for record in records:
            by_record.add_record(record)
        by_batch = BipartiteGraph()
        sample_ids = by_batch.add_batch(RecordBatch.from_records(records))
        assert sample_ids == [by_record.sample_node_id(r.record_id) for r in records]
        frozen_record = by_record.freeze()
        frozen_batch = by_batch.freeze()
        assert np.array_equal(frozen_record.indptr, frozen_batch.indptr)
        assert np.array_equal(frozen_record.indices, frozen_batch.indices)
        assert np.array_equal(frozen_record.weights, frozen_batch.weights)
        assert frozen_record.keys.tolist() == frozen_batch.keys.tolist()


class TestSimulateBatch:
    def test_generate_building_batch_matches_dataset(self):
        config = office_building_config(num_floors=2, samples_per_floor=6)
        from repro.simulate import generate_building_dataset

        dataset = generate_building_dataset(config, seed=11)
        batch = generate_building_batch(config, seed=11)
        assert batch.to_records() == list(dataset.records)


class TestServingBatch:
    def test_labeler_batch_equals_record_path(self, fitted, traffic):
        labeler = OnlineFloorLabeler(fitted)
        batch = RecordBatch.from_records(traffic)
        assert labeler.label(traffic) == labeler.label(batch)

    def test_labeler_empty_batch(self, fitted):
        labeler = OnlineFloorLabeler(fitted)
        assert labeler.label(RecordBatch.from_records([])) == []

    def test_online_floors_batch_identical(self, fitted, traffic):
        batch = RecordBatch.from_records(traffic)
        floors_r, conf_r, known_r = fitted.online_floors(traffic)
        floors_b, conf_b, known_b = fitted.online_floors_batch(batch)
        assert np.array_equal(floors_r, floors_b)
        assert np.array_equal(conf_r, conf_b)
        assert np.array_equal(known_r, known_b)

    def test_registry_buffers_batch_traffic(self, fitted, traffic):
        registry = BuildingRegistry(config=FAST_CONFIG)
        registry.add_fitted("b0", fitted)
        batch = RecordBatch.from_records(traffic[:10])
        labels = registry.label("b0", batch)
        assert [label.record_id for label in labels] == [
            record.record_id for record in traffic[:10]
        ]
        assert registry.buffered_record_count("b0") == 10

    def test_registry_batch_buffering_respects_capacity(self, fitted, traffic):
        from repro.serving.drift import RefreshPolicy

        policy = RefreshPolicy(buffer_size=5)
        registry = BuildingRegistry(config=FAST_CONFIG, refresh_policy=policy)
        registry.add_fitted("b0", fitted)
        registry.label("b0", RecordBatch.from_records(traffic[:12]))
        assert registry.buffered_record_count("b0") == 5
        # Same final buffer as the record path: the last 5 unknown records.
        record_registry = BuildingRegistry(config=FAST_CONFIG, refresh_policy=policy)
        record_registry.add_fitted("b0", fitted)
        record_registry.label("b0", traffic[:12])
        assert list(registry._recent["b0"]) == list(record_registry._recent["b0"])

    def test_refresh_from_batch_matches_records(self, fitted, traffic):
        new_records = [
            SignalRecord(f"wave-{i}", dict(record.readings))
            for i, record in enumerate(traffic[:6])
        ]
        from_batch = fitted.refresh(
            RecordBatch.from_records(new_records), fine_tune_epochs=1
        )
        from_records = fitted.refresh(new_records, fine_tune_epochs=1)
        assert from_batch.report == from_records.report
        assert np.array_equal(
            from_batch.fitted.result.floor_labels,
            from_records.fitted.result.floor_labels,
        )
        # Duplicate ids (already trained on) are skipped either way.
        duplicate = fitted.refresh(
            RecordBatch.from_records(
                new_records + [SignalRecord(fitted.record_ids[0], {"aa": -50.0})]
            ),
            fine_tune_epochs=1,
        )
        assert duplicate.report.num_skipped == 1

    def test_fleet_server_batch_and_mixed_traffic(self, fitted, traffic):
        registry = BuildingRegistry(config=FAST_CONFIG)
        registry.add_fitted("b0", fitted)
        vocab = MacVocab()
        first = RecordBatch.from_records(traffic[:5], vocab=vocab)
        second = RecordBatch.from_records(traffic[5:9], vocab=vocab)
        with FleetServer(registry, num_workers=2, batch_window_s=0.005) as server:
            futures = [
                server.submit("b0", first),
                server.submit("b0", second),
                server.submit("b0", traffic[9:12]),  # plain records, same window
            ]
            responses = [future.result() for future in futures]
        assert [label.record_id for label in responses[0].labels] == [
            record.record_id for record in traffic[:5]
        ]
        assert [len(response.labels) for response in responses] == [5, 4, 3]
        # The responses match the unbatched reference labels exactly.
        reference = OnlineFloorLabeler(fitted).label(traffic[:12])
        served = [
            label for response in responses for label in response.labels
        ]
        assert served == reference

    def test_server_stats_guarded_right_after_start(self, fitted):
        registry = BuildingRegistry(config=FAST_CONFIG)
        registry.add_fitted("b0", fitted)
        server = FleetServer(registry)
        try:
            stats = server.start().stats()
        finally:
            server.stop()
        assert stats.records_per_second == 0.0
        assert math.isfinite(stats.records_per_second)
        assert stats.num_records == 0

    def test_server_stats_zero_window_is_finite(self):
        # Simulate a start/stop pair faster than the clock resolution: the
        # guarded computation must report 0.0, never inf or NaN.
        from repro.serving.server import MIN_STATS_WINDOW_S

        assert MIN_STATS_WINDOW_S > 0
        registry = BuildingRegistry(config=FAST_CONFIG)
        server = FleetServer(registry)
        server._started_at = 0.0
        server._stopped_elapsed = 0.0
        server._num_records = 100
        stats = server.stats()
        assert stats.records_per_second == 0.0
        assert math.isfinite(stats.records_per_second)
