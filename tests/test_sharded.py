"""Sharded multi-process fleet serving: routing, identity, backpressure."""

from __future__ import annotations

import time
from collections import Counter

import numpy as np
import pytest

from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    BuildingRegistry,
    DriftThresholds,
    FleetServer,
    LabelRequest,
    RefreshPolicy,
    ShardedFleetServer,
    ShardOverloadedError,
)
from repro.serving.sharded import ConsistentHashRing, _WireBatch, stable_hash64
from repro.signals.batch import MacVocab, RecordBatch
from repro.signals.record import SignalRecord
from repro.simulate import (
    LoadProfile,
    generate_label_traffic,
    generate_single_building,
    replay_traffic,
)

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)

BUILDING_IDS = ("shard-test-a", "shard-test-b", "shard-test-c")


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    """Three small fitted buildings persisted to one store, plus streams."""
    store = tmp_path_factory.mktemp("fleet-store")
    registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG, capacity=4)
    streams = {}
    for index, building_id in enumerate(BUILDING_IDS):
        labeled = generate_single_building(
            num_floors=3, samples_per_floor=25, seed=40 + index
        )
        train, stream = labeled.holdout_split(train_per_floor=18)
        anchor = train.pick_labeled_sample(floor=0)
        observed = train.strip_labels(keep_record_ids=[anchor.record_id])
        registry.register(building_id, observed, anchor_record_id=anchor.record_id)
        registry.get(building_id)
        streams[building_id] = [record.without_floor() for record in stream]
    return store, streams


def label_tuples(responses):
    return [
        (label.record_id, label.floor, label.confidence, label.known_mac_fraction)
        for response in responses
        for label in response.labels
    ]


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        first, second = ConsistentHashRing(4), ConsistentHashRing(4)
        keys = [f"building-{i}" for i in range(200)]
        assert [first.shard_for(k) for k in keys] == [second.shard_for(k) for k in keys]

    def test_shards_in_range_and_all_used(self):
        ring = ConsistentHashRing(4)
        owners = {ring.shard_for(f"b-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_resize_remaps_only_a_fraction(self):
        before, after = ConsistentHashRing(4), ConsistentHashRing(5)
        keys = [f"building-{i}" for i in range(1000)]
        moved = sum(before.shard_for(k) != after.shard_for(k) for k in keys)
        # Consistent hashing moves ~1/5 of keys going 4 -> 5 shards; naive
        # modulo hashing would move ~4/5.  Allow generous slack.
        assert moved / len(keys) < 0.45

    def test_stable_hash_is_process_independent(self):
        # blake2b, not the salted builtin hash: the exact value is part of
        # the routing contract between dispatcher and workers.
        assert stable_hash64("bench-000") == stable_hash64("bench-000")
        assert stable_hash64("a") != stable_hash64("b")

    def test_benchmark_fleet_ids_stay_balanced(self):
        # The worker-count sweep in benchmarks/test_serving_throughput.py
        # relies on these ids splitting evenly; a ring change that unbalances
        # them must fail here, not as a silent benchmark distortion.
        fleet = [
            "bench-003", "bench-009", "bench-000", "bench-004",
            "bench-002", "bench-008", "bench-015", "bench-016",
        ]
        assert Counter(
            ConsistentHashRing(4).shard_for(b) for b in fleet
        ) == {0: 2, 1: 2, 2: 2, 3: 2}
        assert Counter(
            ConsistentHashRing(2).shard_for(b) for b in fleet
        ) == {0: 4, 1: 4}

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)
        with pytest.raises(ValueError):
            ConsistentHashRing(2, replicas=0)


class TestWireBatch:
    def test_round_trip_reinterns_against_shard_vocab(self):
        records = [
            SignalRecord("r0", {"aa": -40.0, "bb": -55.0}, floor=1,
                         position=(1.0, 2.0), device_id="dev", timestamp=5.0),
            SignalRecord("r1", {"bb": -60.0, "cc": -70.0}),
        ]
        batch = RecordBatch.from_records(records, vocab=MacVocab())
        shard_vocab = MacVocab(["zz"])  # pre-populated: ids must translate
        rebuilt = _WireBatch.from_batch(batch).to_batch(shard_vocab)
        assert rebuilt.vocab is shard_vocab
        assert rebuilt.to_records() == records

    def test_wire_form_carries_only_used_macs(self):
        vocab = MacVocab([f"mac-{i}" for i in range(100)])
        batch = RecordBatch.from_records(
            [SignalRecord("r0", {"mac-7": -50.0, "mac-9": -60.0})], vocab=vocab
        )
        wire = _WireBatch.from_batch(batch)
        assert set(wire.macs) == {"mac-7", "mac-9"}


class TestShardedFleetServer:
    def test_labels_identical_to_single_process_server(self, fleet_store):
        store, streams = fleet_store
        traffic = generate_label_traffic(
            streams,
            num_requests=18,
            profile=LoadProfile(batch_size_mix=((3, 0.5), (9, 0.5))),
            seed=11,
        )
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, shard_capacity=2
        ) as server:
            futures, _ = replay_traffic(server.submit, traffic)
            sharded = [future.result(timeout=120) for future in futures]
            assert {server.shard_for(b) for b in streams} <= {0, 1}
        registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG)
        with FleetServer(registry) as single:
            futures = [
                single.submit(request.building_id, request.records)
                for request in traffic
            ]
            in_process = [future.result(timeout=120) for future in futures]
        assert label_tuples(sharded) == label_tuples(in_process)

    def test_record_sequence_payloads(self, fleet_store):
        store, streams = fleet_store
        building_id = BUILDING_IDS[0]
        records = streams[building_id][:5]
        with ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG) as server:
            response = server.submit(building_id, records).result(timeout=120)
        assert [label.record_id for label in response.labels] == [
            record.record_id for record in records
        ]

    def test_serve_returns_responses_in_request_order(self, fleet_store):
        store, streams = fleet_store
        vocab = MacVocab()
        requests = [
            LabelRequest(
                request_id=f"req-{index}",
                building_id=building_id,
                records=RecordBatch.from_records(streams[building_id][:4], vocab=vocab),
            )
            for index, building_id in enumerate(BUILDING_IDS * 2)
        ]
        with ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG) as server:
            responses = server.serve(requests)
        assert [response.request_id for response in responses] == [
            request.request_id for request in requests
        ]
        assert all(
            response.building_id == request.building_id
            for response, request in zip(responses, requests)
        )

    def test_unknown_building_raises_via_future(self, fleet_store):
        store, streams = fleet_store
        record = streams[BUILDING_IDS[0]][0]
        with ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG) as server:
            future = server.submit("no-such-building", [record])
            with pytest.raises(KeyError):
                future.result(timeout=120)

    def test_invalid_building_id_rejected_at_submit(self, fleet_store):
        store, streams = fleet_store
        record = streams[BUILDING_IDS[0]][0]
        with ShardedFleetServer(store, num_workers=1, config=FAST_CONFIG) as server:
            with pytest.raises(ValueError):
                server.submit("../escape", [record])
            with pytest.raises(ValueError):
                server.submit(BUILDING_IDS[0], [])

    def test_submit_requires_running_server(self, fleet_store):
        store, streams = fleet_store
        server = ShardedFleetServer(store, num_workers=1, config=FAST_CONFIG)
        with pytest.raises(RuntimeError):
            server.submit(BUILDING_IDS[0], streams[BUILDING_IDS[0]][:1])
        server.stop()  # stopping a never-started server is a no-op

    def test_backpressure_rejects_then_serve_retries(self, fleet_store):
        store, streams = fleet_store
        building_id = BUILDING_IDS[0]
        records = streams[building_id][:3]
        with ShardedFleetServer(
            store, num_workers=1, config=FAST_CONFIG, max_inflight=1
        ) as server:
            futures = []
            rejections = []
            for _ in range(300):
                try:
                    futures.append(server.submit(building_id, records))
                except ShardOverloadedError as error:
                    rejections.append(error)
            assert rejections, "a 1-deep inflight window must reject a flood"
            assert all(error.retry_after_s > 0 for error in rejections)
            assert all(error.shard == 0 for error in rejections)
            for future in futures:
                future.result(timeout=120)
            stats = server.stats()
            assert stats.num_rejected == len(rejections)
            # serve() retries rejected submits until the shard drains.
            requests = [
                LabelRequest(
                    request_id=f"retry-{index}",
                    building_id=building_id,
                    records=tuple(records),
                )
                for index in range(30)
            ]
            responses = server.serve(requests)
            assert len(responses) == len(requests)

    def test_fleet_wide_stats_aggregate_shards(self, fleet_store):
        store, streams = fleet_store
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, shard_capacity=2
        ) as server:
            total = 0
            futures = []
            for building_id in BUILDING_IDS:
                records = streams[building_id][:6]
                total += len(records)
                futures.append(server.submit(building_id, records))
            for future in futures:
                future.result(timeout=120)
            stats = server.stats()
        assert stats.num_records == total
        assert stats.num_requests == len(BUILDING_IDS)
        assert stats.num_records == sum(s.server.num_records for s in stats.shards)
        assert stats.elapsed_s > 0
        assert np.isfinite(stats.records_per_second)

    def test_drift_snapshot_routes_to_owning_shard(self, fleet_store):
        store, streams = fleet_store
        building_id = BUILDING_IDS[1]
        records = streams[building_id][:8]
        with ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG) as server:
            server.submit(building_id, records).result(timeout=120)
            snapshot = server.drift_snapshot(building_id)
            other = server.drift_snapshot(BUILDING_IDS[0])
        assert snapshot.num_records == len(records)
        assert other.num_records == 0

    def test_refresh_drifted_sweeps_across_shards(self, fleet_store):
        store, streams = fleet_store
        policy = RefreshPolicy(
            thresholds=DriftThresholds(
                min_records=8, max_unknown_mac_fraction=0.10
            ),
            min_new_records=4,
            fine_tune_epochs=1,
        )
        building_id = BUILDING_IDS[2]
        # Alien MACs drive the unknown fraction over the threshold.
        drifted = [
            SignalRecord(
                f"drift-{index}",
                {**record.readings, "aa:new:ap": -50.0, "bb:new:ap": -55.0},
            )
            for index, record in enumerate(streams[building_id][:12])
        ]
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, refresh_policy=policy
        ) as server:
            server.submit(building_id, drifted).result(timeout=120)
            assert server.drift_snapshot(building_id).drifted
            reports = server.refresh_drifted()
            # Only the drifted building refreshed; its report reflects the
            # alien-MAC records it absorbed.
            assert set(reports) == {building_id}
            assert reports[building_id].num_new_records > 0
            # The refreshed generation keeps serving.
            response = server.submit(
                building_id, streams[building_id][12:16]
            ).result(timeout=120)
            assert len(response.labels) == 4

    def test_restart_after_stop(self, fleet_store):
        store, streams = fleet_store
        server = ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG)
        building_id = BUILDING_IDS[0]
        with server:
            server.submit(building_id, streams[building_id][:2]).result(timeout=120)
        assert not server.running
        with server:
            response = server.submit(
                building_id, streams[building_id][2:4]
            ).result(timeout=120)
        assert len(response.labels) == 2

    def test_building_ids_lists_the_store(self, fleet_store):
        store, _ = fleet_store
        server = ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG)
        assert set(BUILDING_IDS) <= set(server.building_ids)

    def test_constructor_validation(self, fleet_store):
        store, _ = fleet_store
        with pytest.raises(ValueError):
            ShardedFleetServer(store, num_workers=0)
        with pytest.raises(ValueError):
            ShardedFleetServer(store, max_inflight=0)
        with pytest.raises(ValueError):
            ShardedFleetServer(store, shard_capacity=0)


class TestFleetTelemetry:
    def test_fleet_metrics_events_and_exposition(self, fleet_store):
        """Worker registries merge into one scrapeable fleet-wide view."""
        store, streams = fleet_store
        requests_per_building = 2
        vocab = MacVocab()
        with ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG) as server:
            # Columnar payloads take the _WireBatch path, so both wire-side
            # histograms (parent encode, worker decode) see traffic.
            futures = [
                server.submit(
                    building_id,
                    RecordBatch.from_records(records[start : start + 5], vocab=vocab),
                )
                for building_id, records in streams.items()
                for start in (0, 5)
            ]
            for future in futures:
                future.result(timeout=120)
            snapshot = server.fleet_metrics(timeout_s=60)
            events = server.fleet_events(timeout_s=60)
            summary = server.latency_summary(by="building", timeout_s=60)
            text = server.render_prometheus(timeout_s=60)

        # Every completed request is counted exactly once fleet-wide, and
        # each worker's counters stay attributable through the shard label.
        requests_family = snapshot.family("fleet_requests_total")
        assert requests_family is not None and requests_family.kind == "counter"
        total = sum(sample.value for sample in requests_family.samples)
        assert total == requests_per_building * len(streams)
        assert all(
            dict(sample.labels).keys() == {"shard", "building"}
            for sample in requests_family.samples
        )

        # Per-request latency histograms merge across shards per building.
        assert set(summary) == set(streams)
        for building_id in streams:
            assert summary[building_id]["count"] == requests_per_building
            assert summary[building_id]["p99_s"] > 0.0

        # The wire path is instrumented on both sides of the pipe.
        assert snapshot.family("fleet_wire_encode_seconds") is not None
        decode = snapshot.family("fleet_wire_decode_seconds")
        assert decode is not None
        assert sum(s.histogram.count for s in decode.samples) > 0

        # Each worker announced itself on the merged fleet timeline.
        starts = [event for event in events if event.kind == "shard-start"]
        assert {event.shard for event in starts} == {0, 1}
        stamps = [event.timestamp for event in events]
        assert stamps == sorted(stamps)

        # The merged view renders as a valid-looking Prometheus exposition.
        assert "# TYPE fleet_requests_total counter" in text
        assert "# TYPE fleet_request_latency_seconds histogram" in text
        assert 'shard="0"' in text and 'shard="1"' in text

    def test_latency_summary_by_shard_covers_all_workers(self, fleet_store):
        store, streams = fleet_store
        with ShardedFleetServer(store, num_workers=2, config=FAST_CONFIG) as server:
            futures = [
                server.submit(building_id, records[:4])
                for building_id, records in streams.items()
            ]
            for future in futures:
                future.result(timeout=120)
            by_shard = server.latency_summary(by="shard", timeout_s=60)
        owners = {str(server.shard_for(building_id)) for building_id in streams}
        assert set(by_shard) == owners
        assert sum(entry["count"] for entry in by_shard.values()) == len(streams)


class TestSharedMemoryFleet:
    """``shared=True``: one physical artifact copy across all workers."""

    def test_labels_identical_and_segments_swept(self, fleet_store):
        import os

        store, streams = fleet_store
        traffic = generate_label_traffic(
            streams,
            num_requests=12,
            profile=LoadProfile(batch_size_mix=((3, 0.5), (9, 0.5))),
            seed=13,
        )
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, shard_capacity=2, shared=True
        ) as server:
            prefix = server.shared_prefix
            assert prefix is not None
            futures, _ = replay_traffic(server.submit, traffic)
            shared_labels = [future.result(timeout=120) for future in futures]
            if os.path.isdir("/dev/shm"):
                live = [
                    name
                    for name in os.listdir("/dev/shm")
                    if name.startswith(f"{prefix}-")
                ]
                assert live, "serving should have published shared bundles"
        if os.path.isdir("/dev/shm"):
            leftover = [
                name for name in os.listdir("/dev/shm") if name.startswith(f"{prefix}-")
            ]
            assert leftover == [], "stop() must leave no shared segments behind"
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, shard_capacity=2, shared=False
        ) as server:
            futures, _ = replay_traffic(server.submit, traffic)
            private_labels = [future.result(timeout=120) for future in futures]
        assert label_tuples(shared_labels) == label_tuples(private_labels)

    def test_shared_prefix_is_store_deterministic(self, fleet_store, tmp_path):
        store, _ = fleet_store
        first = ShardedFleetServer(store, shared=True)
        second = ShardedFleetServer(store, shared=True)
        other = ShardedFleetServer(tmp_path, shared=True)
        assert first.shared_prefix == second.shared_prefix
        assert first.shared_prefix != other.shared_prefix
        assert ShardedFleetServer(store, shared=False).shared_prefix is None


def test_replay_traffic_honours_schedule_and_backpressure():
    submitted = []

    class FlakySubmit:
        def __init__(self):
            self.calls = 0

        def __call__(self, building_id, records):
            self.calls += 1
            if self.calls == 2:
                raise ShardOverloadedError(0, 1, 0.001)
            submitted.append((building_id, len(records)))
            return "ok"

    records = [SignalRecord("r0", {"aa": -40.0})]
    batch = RecordBatch.from_records(records, vocab=MacVocab())
    traffic = [
        type("T", (), {"offset_s": 0.0, "building_id": "b", "records": batch})(),
        type("T", (), {"offset_s": 0.01, "building_id": "b", "records": batch})(),
    ]
    start = time.perf_counter()
    results, rejected = replay_traffic(FlakySubmit(), traffic)
    assert results == ["ok", "ok"]
    assert rejected == 1
    assert time.perf_counter() - start >= 0.01
