"""Telemetry core: histograms, metrics registry, events, exposition, capacity."""

from __future__ import annotations

import math
import pickle
import re
import threading
import urllib.request

import numpy as np
import pytest

from repro.telemetry import (
    BIN_HIGHEST,
    BIN_LOWEST,
    BINS_PER_DECADE,
    NUM_BINS,
    CapacityPlanner,
    CapacityPoint,
    EventRing,
    LatencyHistogram,
    MetricsHTTPServer,
    MetricsRegistry,
    MetricsSnapshot,
    Telemetry,
    merge_events,
    summarize_events,
)

#: Each geometric bin spans a ratio of 10**(1/BINS_PER_DECADE); a quantile
#: estimate can be off by at most one bin width.
BIN_RATIO = 10.0 ** (1.0 / BINS_PER_DECADE)


class TestLatencyHistogram:
    def test_quantiles_match_numpy_within_bin_resolution(self):
        rng = np.random.default_rng(3)
        # Log-normal latencies spanning ~3 decades, all inside the finite range.
        values = np.exp(rng.normal(loc=math.log(5e-3), scale=1.2, size=20_000))
        values = np.clip(values, BIN_LOWEST * 2, BIN_HIGHEST / 2)
        histogram = LatencyHistogram()
        histogram.observe_many(values)
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            estimate = histogram.quantile(q)
            assert exact / BIN_RATIO <= estimate <= exact * BIN_RATIO

    def test_observe_scalar_and_vector_paths_bin_identically(self):
        rng = np.random.default_rng(11)
        values = np.concatenate(
            [
                np.power(10.0, rng.uniform(-6, 3, size=500)),
                np.asarray([0.0, BIN_LOWEST, BIN_HIGHEST, 1.0, -0.5]),
            ]
        )
        one_by_one = LatencyHistogram()
        for value in values:
            one_by_one.observe(float(value))
        small_batches = LatencyHistogram()
        for start in range(0, len(values), 7):  # below the vectorize threshold
            small_batches.observe_many(values[start : start + 7].tolist())
        vectorized = LatencyHistogram()
        vectorized.observe_many(values)
        assert np.array_equal(one_by_one.counts(), vectorized.counts())
        assert np.array_equal(one_by_one.counts(), small_batches.counts())
        assert one_by_one.count == len(values)

    def test_underflow_overflow_and_negative_clamp(self):
        histogram = LatencyHistogram()
        histogram.observe(BIN_LOWEST / 10)  # underflow
        histogram.observe(BIN_HIGHEST * 10)  # overflow
        histogram.observe(-1.0)  # clamped to 0.0 -> underflow
        counts = histogram.counts()
        assert counts[0] == 2
        assert counts[NUM_BINS - 1] == 1
        assert histogram.quantile(0.0) == BIN_LOWEST
        assert histogram.quantile(1.0) == BIN_HIGHEST
        assert histogram.sum == BIN_LOWEST / 10 + BIN_HIGHEST * 10

    def test_empty_histogram_is_all_zero(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_merge_is_associative_and_matches_pooled_observations(self):
        rng = np.random.default_rng(7)
        shards = [
            np.power(10.0, rng.uniform(-5, 1, size=400)) for _ in range(3)
        ]
        parts = []
        for shard_values in shards:
            histogram = LatencyHistogram()
            histogram.observe_many(shard_values)
            parts.append(histogram)

        def rebuild(index):
            return LatencyHistogram.from_state(
                parts[index].counts(), parts[index].sum
            )

        left = rebuild(0).merge(rebuild(1)).merge(rebuild(2))
        right = rebuild(0).merge(rebuild(1).merge(rebuild(2)))
        merged = LatencyHistogram.merged(parts)
        pooled = LatencyHistogram()
        pooled.observe_many(np.concatenate(shards))
        for histogram in (left, right, merged):
            assert np.array_equal(histogram.counts(), pooled.counts())
            assert histogram.count == pooled.count
            assert histogram.sum == pytest.approx(pooled.sum)
            assert histogram.quantile(0.95) == pooled.quantile(0.95)

    def test_from_state_round_trip(self):
        histogram = LatencyHistogram()
        histogram.observe_many([1e-4, 3e-3, 0.2, 5.0])
        rebuilt = LatencyHistogram.from_state(histogram.counts(), histogram.sum)
        assert np.array_equal(rebuilt.counts(), histogram.counts())
        assert rebuilt.count == histogram.count
        assert rebuilt.quantiles() == histogram.quantiles()

    def test_from_state_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            LatencyHistogram.from_state(np.zeros(NUM_BINS - 1), 0.0)

    def test_concurrent_observers_lose_nothing(self):
        histogram = LatencyHistogram()
        counter_metric = MetricsRegistry().counter("stress_total")
        per_thread, num_threads = 2_000, 8
        barrier = threading.Barrier(num_threads)

        def hammer(seed):
            rng = np.random.default_rng(seed)
            values = np.power(10.0, rng.uniform(-5, 1, size=per_thread))
            barrier.wait()
            for index, value in enumerate(values.tolist()):
                if index % 64 == 0:
                    histogram.observe_many(values[index : index + 4])
                histogram.observe(value)
                counter_metric.inc()

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = num_threads * per_thread
        assert counter_metric.value == expected
        # observe() once per value plus one observe_many(4) every 64 values
        # (including index 0).
        batched = (per_thread + 63) // 64 * 4
        assert histogram.count == expected + num_threads * batched
        assert int(histogram.counts().sum()) == histogram.count


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "help", building="b0")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4.0)
        gauge.dec()
        gauge.inc(0.5)
        assert gauge.value == 3.5

    def test_same_labels_return_same_child_any_kwarg_order(self):
        registry = MetricsRegistry()
        first = registry.counter("ops_total", building="b", op="load")
        second = registry.counter("ops_total", op="load", building="b")
        assert first is second
        other = registry.counter("ops_total", building="b", op="evict")
        assert other is not first

    def test_kind_and_label_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", building="b")
        with pytest.raises(ValueError):
            registry.gauge("thing_total", building="b")
        with pytest.raises(ValueError):
            registry.counter("thing_total", shard="0")
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", **{"0bad": "x"})

    def test_const_labels_stamped_on_every_child(self):
        registry = MetricsRegistry(const_labels={"shard": "2"})
        registry.counter("requests_total", building="b0").inc(3)
        snapshot = registry.snapshot()
        assert snapshot.value("requests_total", shard="2", building="b0") == 3.0
        assert snapshot.value("requests_total", building="b0") == 0.0

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("requests_total")
        counter.inc(100)
        registry.histogram("latency_seconds").observe(1.0)
        assert counter.value == 0.0
        assert registry.snapshot().families == ()
        assert registry.render_prometheus() == "\n"

    def test_snapshot_is_picklable_and_mergeable(self):
        shards = []
        for shard in range(2):
            telemetry = Telemetry(shard=shard)
            telemetry.metrics.counter("fleet_requests_total", building="b0").inc(
                5 * (shard + 1)
            )
            telemetry.metrics.histogram(
                "fleet_request_latency_seconds", building="b0"
            ).observe_many([1e-3 * (shard + 1)] * 10)
            telemetry.metrics.gauge("fleet_shard_inflight").set(shard)
            shards.append(
                pickle.loads(pickle.dumps(telemetry.metrics.snapshot()))
            )
        merged = MetricsSnapshot.merge(shards)
        # Counters keep their shard labels apart and sum only within a child.
        assert merged.value("fleet_requests_total", shard="0", building="b0") == 5.0
        assert merged.value("fleet_requests_total", shard="1", building="b0") == 10.0
        state = merged.histogram_state(
            "fleet_request_latency_seconds", shard="1", building="b0"
        )
        assert state is not None and state.count == 10
        # latency_summary pools children across shards along the building axis.
        summary = merged.latency_summary("fleet_request_latency_seconds", "building")
        assert summary["b0"]["count"] == 20.0
        assert summary["b0"]["p50_s"] > 0.0

    def test_merge_kind_conflict_raises(self):
        first = MetricsRegistry()
        first.counter("thing")
        second = MetricsRegistry()
        second.gauge("thing")
        with pytest.raises(ValueError):
            MetricsSnapshot.merge([first.snapshot(), second.snapshot()])


SAMPLE_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})? -?[0-9].*$"
)


class TestPrometheusExposition:
    def test_help_type_and_sample_lines_are_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("fleet_requests_total", "Requests served", building="b0").inc(7)
        registry.gauge("fleet_inflight_requests", "Queued right now").set(3)
        registry.histogram(
            "fleet_request_latency_seconds", "Submit-to-complete", building="b0"
        ).observe_many([1e-3, 2e-3, 0.5])
        text = registry.render_prometheus()
        assert text.endswith("\n")
        lines = text.rstrip("\n").split("\n")
        for name, kind in (
            ("fleet_requests_total", "counter"),
            ("fleet_inflight_requests", "gauge"),
            ("fleet_request_latency_seconds", "histogram"),
        ):
            assert f"# TYPE {name} {kind}" in lines
            assert any(line.startswith(f"# HELP {name} ") for line in lines)
        for line in lines:
            if line.startswith("#"):
                continue
            assert SAMPLE_LINE_RE.match(line), line

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds")
        histogram.observe_many([1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0])
        lines = registry.render_prometheus().splitlines()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("latency_seconds_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 6  # the +Inf bucket covers everything
        assert 'le="+Inf"' in [l for l in lines if "_bucket" in l][-1]
        assert "latency_seconds_count 6" in lines

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", building='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert 'building="a\\"b\\\\c\\nd"' in text

    def test_help_newlines_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("helpful_total", "line one\nline two").inc()
        help_lines = [
            line
            for line in registry.render_prometheus().splitlines()
            if line.startswith("# HELP helpful_total")
        ]
        assert help_lines == ["# HELP helpful_total line one\\nline two"]

    def test_http_endpoint_serves_and_404s(self):
        registry = MetricsRegistry()
        registry.counter("scraped_total").inc(2)
        with MetricsHTTPServer(registry.render_prometheus, port=0) as server:
            with urllib.request.urlopen(server.url, timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                body = response.read().decode("utf-8")
            assert "scraped_total 2" in body
            base = server.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=10)
            assert excinfo.value.code == 404
        assert not server.running


class TestEventRing:
    def test_overflow_drops_oldest_and_counts(self):
        ring = EventRing(capacity=3)
        for index in range(5):
            ring.emit("tick", sequence=index)
        assert len(ring) == 3
        assert ring.drops == 2
        retained = [event.details_dict["sequence"] for event in ring.snapshot()]
        assert retained == [2, 3, 4]
        ring.clear()
        assert len(ring) == 0 and ring.drops == 2

    def test_shard_stamp_and_disabled_ring(self):
        ring = EventRing(shard=3)
        event = ring.emit("refresh-start", building_id="b0", trigger="drift")
        assert event.shard == 3
        assert event.building_id == "b0"
        assert event.details_dict == {"trigger": "drift"}
        inert = EventRing(enabled=False)
        assert inert.emit("ignored") is None
        assert len(inert) == 0

    def test_merge_orders_by_timestamp_and_filters_kinds(self):
        rings = [EventRing(shard=index) for index in range(3)]
        for round_index in range(4):
            for ring in rings:
                ring.emit("tick" if round_index % 2 == 0 else "tock")
        merged = merge_events(ring.snapshot() for ring in rings)
        stamps = [event.timestamp for event in merged]
        assert stamps == sorted(stamps)
        assert len(merged) == 12
        only_ticks = merge_events(
            (ring.snapshot() for ring in rings), kinds=["tick"]
        )
        assert {event.kind for event in only_ticks} == {"tick"}
        assert summarize_events(merged) == {"tick": 6, "tock": 6}

    def test_events_pickle_cleanly(self):
        ring = EventRing(shard=1)
        ring.emit("shard-start", pid=123)
        restored = pickle.loads(pickle.dumps(ring.snapshot()))
        assert restored[0].kind == "shard-start"
        assert restored[0].details_dict == {"pid": 123}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


def _point(num_workers, achieved_rps, p99_s, skew=0.0):
    return CapacityPoint(
        num_workers=num_workers,
        arrival_rate_hz=100.0,
        building_skew=skew,
        num_requests=100,
        num_records=1000,
        offered_rps=achieved_rps * 1.1,
        achieved_rps=achieved_rps,
        p50_s=p99_s / 4,
        p95_s=p99_s / 2,
        p99_s=p99_s,
        mean_latency_s=p99_s / 3,
        num_rejections=0,
        elapsed_s=1.0,
    )


class TestCapacityPlanner:
    def test_plan_picks_smallest_sufficient_worker_count(self):
        planner = CapacityPlanner(
            [
                _point(1, 400.0, 0.010),
                _point(2, 900.0, 0.012),
                _point(4, 1700.0, 0.015),
            ]
        )
        plan = planner.plan(target_rps=800.0, p99_budget_s=0.05)
        assert plan.feasible
        assert plan.num_workers == 2
        assert plan.capacity_rps == 900.0
        assert plan.rps_margin == pytest.approx(900.0 / 800.0)

    def test_points_over_budget_do_not_count_as_capacity(self):
        planner = CapacityPlanner(
            [_point(1, 400.0, 0.010), _point(2, 900.0, 0.200)]
        )
        assert planner.capacity_at(2, p99_budget_s=0.05) == 0.0
        plan = planner.plan(target_rps=800.0, p99_budget_s=0.05)
        assert not plan.feasible
        assert plan.num_workers == 1  # the best configuration inside budget
        assert "short of" in plan.reason

    def test_plan_never_extrapolates_beyond_measurements(self):
        plan = CapacityPlanner([_point(1, 400.0, 0.010)]).plan(
            target_rps=4000.0, p99_budget_s=0.05
        )
        assert not plan.feasible and plan.capacity_rps == 400.0
        empty_plan = CapacityPlanner().plan(target_rps=10.0, p99_budget_s=0.05)
        assert not empty_plan.feasible and empty_plan.num_workers == 0

    def test_plan_validates_inputs(self):
        planner = CapacityPlanner([_point(1, 400.0, 0.010)])
        with pytest.raises(ValueError):
            planner.plan(target_rps=0.0, p99_budget_s=0.05)
        with pytest.raises(ValueError):
            planner.plan(target_rps=10.0, p99_budget_s=0.0)

    def test_json_round_trip_preserves_the_grid_and_the_plan(self):
        planner = CapacityPlanner(
            [_point(1, 400.0, 0.010), _point(2, 900.0, 0.012, skew=0.7)]
        )
        restored = CapacityPlanner.from_json(planner.to_json())
        assert restored.points == planner.points
        original = planner.plan(target_rps=800.0, p99_budget_s=0.05)
        recomputed = restored.plan(target_rps=800.0, p99_budget_s=0.05)
        assert recomputed == original


class TestTelemetryBundle:
    def test_disabled_bundle_is_fully_inert(self):
        telemetry = Telemetry.disabled()
        telemetry.metrics.counter("anything_total").inc(5)
        telemetry.events.emit("ignored")
        assert telemetry.metrics.snapshot().families == ()
        assert len(telemetry.events) == 0

    def test_shard_propagates_to_labels_and_events(self):
        telemetry = Telemetry(shard=4)
        telemetry.metrics.counter("requests_total").inc()
        event = telemetry.events.emit("shard-start")
        assert event.shard == 4
        snapshot = telemetry.metrics.snapshot()
        assert snapshot.value("requests_total", shard="4") == 1.0
        assert 'shard="4"' in telemetry.render_prometheus()
