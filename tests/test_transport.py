"""Binary frame protocol: round trips, hostile inputs, and fuzzing.

The transport is the first layer of this codebase exposed to untrusted
peers, so beyond round-trip fidelity these tests drive truncated, corrupt,
oversized, wrong-magic and wrong-version frames at both the header parser
and the payload codecs — every one must fail with a clean
:class:`FrameError` / :class:`EOFError`, never a hang, crash, or silent
misparse.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.serving.results import OnlineLabel
from repro.serving.transport import (
    HEADER,
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME_BYTES,
    OP_LABEL_BATCH,
    OP_NACK,
    OP_PING,
    OP_PONG,
    PROTOCOL_VERSION,
    FrameError,
    _WireBatch,
    decode_control,
    decode_label_batch,
    decode_labels,
    decode_nack,
    decode_pong,
    encode_control,
    encode_frame,
    encode_label_batch,
    encode_labels,
    encode_nack,
    encode_pong,
    parse_header,
    recv_frame,
)
from repro.signals.batch import MacVocab, RecordBatch
from repro.signals.record import SignalRecord


def make_records():
    return (
        SignalRecord(
            "r0",
            {"aa:aa": -40.0, "bb:bb": -55.5},
            floor=2,
            position=(1.0, 2.0),
            device_id="phone-1",
            timestamp=10.5,
        ),
        SignalRecord("r1", {"bb:bb": -70.25}),
        SignalRecord("r2", {"cc:cc": -80.0, "aa:aa": -42.0, "dd:dd": -90.0}),
    )


def make_wire_batch():
    batch = RecordBatch.from_records(make_records())
    return _WireBatch.from_batch(batch)


class TestRoundTrips:
    def test_frame_header_round_trip(self):
        frame = encode_frame(OP_PING, 42, b"xyz")
        op, seq, length = parse_header(frame[:HEADER_SIZE])
        assert (op, seq, length) == (OP_PING, 42, 3)
        assert frame[HEADER_SIZE:] == b"xyz"

    def test_label_batch_round_trip_preserves_every_column(self):
        wire = make_wire_batch()
        payload = encode_label_batch("building-a", wire)
        building_id, decoded = decode_label_batch(payload)
        assert building_id == "building-a"
        assert decoded.macs == wire.macs
        assert list(decoded.record_ids) == list(wire.record_ids)
        assert list(decoded.device_ids) == list(wire.device_ids)  # includes Nones
        assert np.array_equal(decoded.indptr, wire.indptr)
        assert np.array_equal(decoded.local_mac_ids, wire.local_mac_ids)
        assert np.array_equal(decoded.rss, wire.rss)
        assert np.array_equal(decoded.floors, wire.floors)
        assert np.array_equal(
            np.nan_to_num(decoded.positions), np.nan_to_num(wire.positions)
        )
        assert np.array_equal(
            np.nan_to_num(decoded.timestamps), np.nan_to_num(wire.timestamps)
        )

    def test_decoded_batch_reassembles_identically(self):
        records = make_records()
        original = RecordBatch.from_records(records)
        payload = encode_label_batch("b", _WireBatch.from_batch(original))
        _, decoded = decode_label_batch(payload)
        rebuilt = decoded.to_batch(MacVocab())
        assert list(rebuilt.record_ids) == list(original.record_ids)
        assert np.array_equal(rebuilt.indptr, original.indptr)
        assert np.array_equal(rebuilt.rss, original.rss)
        for rebuilt_record, record in zip(rebuilt.to_records(), records):
            assert rebuilt_record.readings == record.readings

    def test_decode_is_zero_copy_for_numeric_columns(self):
        payload = encode_label_batch("b", make_wire_batch())
        _, decoded = decode_label_batch(payload)
        # A frombuffer view of the payload owns no data of its own.
        assert decoded.rss.base is not None
        assert not decoded.rss.flags.owndata
        assert not decoded.rss.flags.writeable

    def test_labels_round_trip(self):
        labels = (
            OnlineLabel("r0", 3, 0.875, 1.0),
            OnlineLabel("r1", -1, 0.0, 0.25),
        )
        assert decode_labels(encode_labels(labels)) == labels

    def test_small_payload_round_trips(self):
        assert decode_nack(encode_nack(0.125)) == 0.125
        assert decode_pong(encode_pong(12345)) == 12345
        assert decode_control(encode_control("refresh", (["b1"],))) == (
            "refresh",
            (["b1"],),
        )


class TestHostileHeaders:
    def test_wrong_magic_rejected(self):
        frame = bytearray(encode_frame(OP_PING, 0))
        frame[:4] = b"HTTP"
        with pytest.raises(FrameError, match="magic"):
            parse_header(bytes(frame[:HEADER_SIZE]))

    def test_wrong_version_rejected(self):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION + 1, OP_PING, 0, 7, 0)
        with pytest.raises(FrameError, match="version") as excinfo:
            parse_header(header)
        assert excinfo.value.seq == 7  # parsed far enough to address the error

    def test_unknown_op_rejected(self):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, 0x7F, 0, 0, 0)
        with pytest.raises(FrameError, match="unknown frame op"):
            parse_header(header)

    def test_oversized_length_rejected_without_allocation(self):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, OP_PING, 0, 0, MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="exceeds cap"):
            parse_header(header)

    def test_short_header_rejected(self):
        with pytest.raises(FrameError, match="short frame header"):
            parse_header(b"FIS1\x01")


class TestHostilePayloads:
    def test_garbage_payload_rejected(self):
        with pytest.raises(FrameError):
            decode_label_batch(b"\x00" * 64)

    def test_truncated_batch_rejected(self):
        payload = encode_label_batch("b", make_wire_batch())
        for cut in (1, len(payload) // 3, len(payload) - 1):
            with pytest.raises(FrameError):
                decode_label_batch(payload[:cut])

    def test_nonmonotone_indptr_rejected(self):
        wire = make_wire_batch()
        broken = _WireBatch(
            record_ids=wire.record_ids,
            indptr=np.array([0, 2, 1, 6], dtype=np.int64),
            local_mac_ids=wire.local_mac_ids,
            macs=wire.macs,
            rss=wire.rss,
            floors=wire.floors,
            positions=wire.positions,
            device_ids=wire.device_ids,
            timestamps=wire.timestamps,
        )
        with pytest.raises(FrameError, match="indptr"):
            decode_label_batch(encode_label_batch("b", broken))

    def test_out_of_range_mac_ids_rejected(self):
        wire = make_wire_batch()
        broken = _WireBatch(
            record_ids=wire.record_ids,
            indptr=wire.indptr,
            local_mac_ids=wire.local_mac_ids + len(wire.macs),
            macs=wire.macs,
            rss=wire.rss,
            floors=wire.floors,
            positions=wire.positions,
            device_ids=wire.device_ids,
            timestamps=wire.timestamps,
        )
        with pytest.raises(FrameError, match="MAC column"):
            decode_label_batch(encode_label_batch("b", broken))

    def test_invalid_utf8_rejected(self):
        payload = bytearray(encode_label_batch("building-a", make_wire_batch()))
        index = bytes(payload).index(b"building-a")
        payload[index : index + 2] = b"\xff\xfe"
        with pytest.raises(FrameError):
            decode_label_batch(bytes(payload))

    def test_malformed_control_rejected(self):
        with pytest.raises(FrameError, match="control payload"):
            decode_control(b"not a pickle")
        import pickle

        with pytest.raises(FrameError, match="name, args"):
            decode_control(pickle.dumps(("refresh", "not-a-tuple")))

    def test_wrong_size_nack_and_pong_rejected(self):
        with pytest.raises(FrameError):
            decode_nack(b"\x00" * 4)
        with pytest.raises(FrameError):
            decode_pong(b"\x00" * 12)


class TestSocketFraming:
    @staticmethod
    def _pair():
        left, right = socket.socketpair()
        left.settimeout(5.0)
        right.settimeout(5.0)
        return left, right

    def test_frame_round_trip_over_socket(self):
        left, right = self._pair()
        try:
            payload = encode_label_batch("b", make_wire_batch())
            left.sendall(encode_frame(OP_LABEL_BATCH, 9, payload))
            op, seq, received = recv_frame(right)
            assert (op, seq) == (OP_LABEL_BATCH, 9)
            assert received == payload
        finally:
            left.close()
            right.close()

    def test_mid_frame_drop_raises_eof_not_hang(self):
        left, right = self._pair()
        try:
            frame = encode_frame(OP_LABEL_BATCH, 1, b"x" * 1000)
            left.sendall(frame[: len(frame) // 2])
            left.close()
            with pytest.raises(EOFError):
                recv_frame(right)
        finally:
            right.close()

    def test_clean_close_between_frames_raises_eof(self):
        left, right = self._pair()
        try:
            left.sendall(encode_frame(OP_PING, 0))
            left.close()
            assert recv_frame(right)[0] == OP_PING
            with pytest.raises(EOFError):
                recv_frame(right)
        finally:
            right.close()

    def test_pipelined_frames_keep_their_seqs(self):
        left, right = self._pair()
        try:
            for seq in range(20):
                left.sendall(encode_frame(OP_NACK, seq, encode_nack(float(seq))))
            for seq in range(20):
                op, got_seq, payload = recv_frame(right)
                assert (op, got_seq, decode_nack(payload)) == (OP_NACK, seq, float(seq))
        finally:
            left.close()
            right.close()


class TestFuzz:
    def test_random_corruption_never_hangs_or_crashes(self):
        """~1k random corruptions of a valid frame: clean errors only.

        Each trial flips bytes, truncates, or extends a valid encoded
        frame, then runs the same parse path a server connection does.
        Any outcome is acceptable except a crash: either it decodes (the
        corruption missed everything load-bearing) or raises FrameError.
        """
        rng = np.random.default_rng(0xF15)
        base = encode_frame(
            OP_LABEL_BATCH, 3, encode_label_batch("b", make_wire_batch())
        )
        decoded = failed = 0
        for trial in range(1000):
            blob = bytearray(base)
            mode = trial % 3
            if mode == 0:  # flip 1-8 random bytes
                for _ in range(int(rng.integers(1, 9))):
                    blob[int(rng.integers(0, len(blob)))] = int(rng.integers(0, 256))
            elif mode == 1:  # truncate
                blob = blob[: int(rng.integers(0, len(blob)))]
            else:  # flip bytes then truncate
                for _ in range(int(rng.integers(1, 5))):
                    blob[int(rng.integers(0, len(blob)))] = int(rng.integers(0, 256))
                blob = blob[: int(rng.integers(HEADER_SIZE, len(blob) + 1))]
            try:
                if len(blob) < HEADER_SIZE:
                    raise FrameError("short header")
                op, seq, length = parse_header(bytes(blob[:HEADER_SIZE]))
                payload = bytes(blob[HEADER_SIZE : HEADER_SIZE + length])
                if len(payload) != length:
                    raise FrameError("truncated payload")
                if op == OP_LABEL_BATCH:
                    decode_label_batch(payload)
                decoded += 1
            except FrameError:
                failed += 1
        assert decoded + failed == 1000
        assert failed > 0  # the corruptions were not all harmless

    def test_fuzzed_string_tables_never_crash(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            blob = rng.integers(0, 256, int(rng.integers(0, 200)), dtype=np.uint8)
            try:
                decode_labels(blob.tobytes())
            except FrameError:
                pass
