"""Property-based tests (hypothesis) for the columnar RecordBatch.

The batch is a pure re-representation of a record sequence, so exact
properties must hold for *any* valid records — not just the unit-test
examples:

* ``RecordBatch.from_records(rs).to_records() == rs`` (lossless round trip,
  including through the JSON-payload constructor);
* MAC vocabulary ids are stable under record permutation: interning the
  same records in any order against one shared :class:`MacVocab` yields the
  same id for every MAC, and each record's readings survive unchanged;
* the batch embedding fast path is *bit-identical* to the per-record path:
  ``FrozenEncoder.embed_batch`` equals ``embed_records`` to the last ulp
  (embeddings and known-MAC fractions), for records mixing known, unknown,
  and entirely-unknown MAC sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn.frozen import FrozenEncoder
from repro.signals.batch import MacVocab, RecordBatch
from repro.signals.record import SignalRecord

#: The encoder vocabulary the embedding properties run against.
VOCAB_MACS = [f"aa:bb:cc:00:00:{i:02x}" for i in range(12)]

#: MACs the encoder has never seen.
UNKNOWN_MACS = [f"zz:zz:zz:00:00:{i:02x}" for i in range(6)]

MAC_POOL = VOCAB_MACS + UNKNOWN_MACS


def _synthetic_encoder(num_hops: int = 2, dim: int = 6) -> FrozenEncoder:
    """A small deterministic encoder over VOCAB_MACS (no training needed)."""
    rng = np.random.default_rng(7)
    weights = [rng.normal(size=(2 * dim, dim)) for _ in range(num_hops)]
    hidden = []
    for _ in range(num_hops):
        matrix = rng.normal(size=(len(VOCAB_MACS), dim))
        matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
        hidden.append(matrix)
    return FrozenEncoder(
        weights=weights,
        activation="tanh",
        mac_vocabulary=list(VOCAB_MACS),
        mac_hidden=hidden,
    )


@pytest.fixture(scope="module")
def encoder() -> FrozenEncoder:
    return _synthetic_encoder()


@st.composite
def record_strategy(draw, index: int) -> SignalRecord:
    macs = draw(
        st.lists(st.sampled_from(MAC_POOL), min_size=1, max_size=8, unique=True)
    )
    readings = {
        mac: draw(
            st.floats(min_value=-120.0, max_value=0.0, allow_nan=False)
        )
        for mac in macs
    }
    floor = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=9)))
    position = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
                st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
            ),
        )
    )
    device_id = draw(st.one_of(st.none(), st.text(min_size=1, max_size=6)))
    timestamp = draw(
        st.one_of(
            st.none(),
            st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False),
        )
    )
    return SignalRecord(
        record_id=f"rec-{index}",
        readings=readings,
        floor=floor,
        position=position,
        device_id=device_id,
        timestamp=timestamp,
    )


@st.composite
def records_strategy(draw, min_size: int = 1, max_size: int = 12):
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(record_strategy(index)) for index in range(count)]


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(records=records_strategy())
    def test_from_records_to_records_is_lossless(self, records):
        assert RecordBatch.from_records(records).to_records() == records

    @settings(max_examples=40, deadline=None)
    @given(records=records_strategy())
    def test_json_payload_round_trip(self, records):
        batch = RecordBatch.from_records(records)
        rebuilt = RecordBatch.from_json_payload(batch.to_json_payload())
        assert rebuilt.to_records() == records

    @settings(max_examples=40, deadline=None)
    @given(records=records_strategy(min_size=2))
    def test_take_selects_records(self, records):
        batch = RecordBatch.from_records(records)
        indices = list(range(len(records) - 1, -1, -2))
        taken = batch.take(indices)
        assert taken.to_records() == [records[i] for i in indices]


class TestVocabStability:
    @settings(max_examples=50, deadline=None)
    @given(records=records_strategy(min_size=2), data=st.data())
    def test_vocab_ids_stable_under_permutation(self, records, data):
        permutation = data.draw(st.permutations(range(len(records))))
        vocab = MacVocab()
        first = RecordBatch.from_records(records, vocab=vocab)
        second = RecordBatch.from_records(
            [records[i] for i in permutation], vocab=vocab
        )
        assert second.vocab is vocab
        # Every MAC keeps the id its first interning assigned...
        for mac in {mac for record in records for mac in record.readings}:
            assert vocab.mac_of(vocab.id_of(mac)) == mac
        # ...and each record's readings survive the permutation unchanged.
        by_id = {record.record_id: record for record in records}
        for index in range(len(second)):
            record_id = str(second.record_ids[index])
            assert second.readings_of(index) == dict(by_id[record_id].readings)

    @settings(max_examples=30, deadline=None)
    @given(records=records_strategy())
    def test_shared_vocab_reuses_ids_across_batches(self, records):
        vocab = MacVocab()
        first = RecordBatch.from_records(records, vocab=vocab)
        size_after_first = len(vocab)
        second = RecordBatch.from_records(records, vocab=vocab)
        assert len(vocab) == size_after_first
        assert np.array_equal(first.mac_ids, second.mac_ids)


class TestEmbeddingBitEquality:
    @settings(max_examples=50, deadline=None)
    @given(records=records_strategy())
    def test_embed_batch_matches_embed_records_bitwise(self, encoder, records):
        unlabeled = [record.without_floor() for record in records]
        batch = RecordBatch.from_records(unlabeled)
        record_embeddings, record_known = encoder.embed_records(unlabeled)
        batch_embeddings, batch_known = encoder.embed_batch(batch)
        assert np.array_equal(record_embeddings, batch_embeddings)
        assert np.array_equal(record_known, batch_known)

    @settings(max_examples=25, deadline=None)
    @given(records=records_strategy())
    def test_no_attention_embed_batch_matches_bitwise(self, records):
        encoder = _synthetic_encoder()
        encoder.attention = False
        batch = RecordBatch.from_records(records)
        record_embeddings, record_known = encoder.embed_records(records)
        batch_embeddings, batch_known = encoder.embed_batch(batch)
        assert np.array_equal(record_embeddings, batch_embeddings)
        assert np.array_equal(record_known, batch_known)

    def test_growing_vocab_extends_translation(self, encoder):
        vocab = MacVocab()
        first = RecordBatch.from_records(
            [SignalRecord("r1", {VOCAB_MACS[0]: -50.0})], vocab=vocab
        )
        embeddings_first, _ = encoder.embed_batch(first)
        # New MACs (known and unknown) intern *after* the translation table
        # was first built; the cached table must extend, not go stale.
        second = RecordBatch.from_records(
            [
                SignalRecord(
                    "r2", {VOCAB_MACS[5]: -60.0, UNKNOWN_MACS[0]: -70.0}
                ),
                SignalRecord("r3", {VOCAB_MACS[0]: -50.0}),
            ],
            vocab=vocab,
        )
        batch_embeddings, batch_known = encoder.embed_batch(second)
        record_embeddings, record_known = encoder.embed_records(
            second.to_records()
        )
        assert np.array_equal(record_embeddings, batch_embeddings)
        assert np.array_equal(record_known, batch_known)
        # Same readings => same embedding direction regardless of which
        # batch carried them (exact cross-batch bitwise equality is not
        # guaranteed — BLAS kernels vary with matrix shape).
        np.testing.assert_allclose(embeddings_first[0], batch_embeddings[1])
