"""Unit tests for SignalDataset."""

import random

import pytest

from repro.signals.dataset import DatasetError, SignalDataset
from repro.signals.record import SignalRecord
from tests.conftest import make_tiny_records


class TestConstruction:
    def test_basic(self, tiny_dataset):
        assert len(tiny_dataset) == 5
        assert tiny_dataset.building_id == "tiny"
        assert tiny_dataset.num_floors == 2

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            SignalDataset([])

    def test_duplicate_ids_rejected(self):
        record = SignalRecord("r1", {"aa": -50.0})
        with pytest.raises(DatasetError):
            SignalDataset([record, record])

    def test_invalid_num_floors(self):
        with pytest.raises(DatasetError):
            SignalDataset(make_tiny_records(), num_floors=0)

    def test_num_floors_inferred_from_labels(self):
        dataset = SignalDataset(make_tiny_records())
        assert dataset.num_floors == 2

    def test_num_floors_unlabeled_without_declaration(self):
        records = [SignalRecord("r1", {"aa": -50.0}), SignalRecord("r2", {"bb": -60.0})]
        dataset = SignalDataset(records)
        with pytest.raises(DatasetError):
            _ = dataset.num_floors


class TestAccess:
    def test_get_and_index_of(self, tiny_dataset):
        assert tiny_dataset.get("r2").record_id == "r2"
        assert tiny_dataset.index_of("r2") == 2
        assert "r2" in tiny_dataset
        assert "missing" not in tiny_dataset

    def test_iteration_order(self, tiny_dataset):
        assert tiny_dataset.record_ids == ["r0", "r1", "r2", "r3", "r4"]

    def test_macs(self, tiny_dataset):
        assert tiny_dataset.macs == {"aa", "bb", "cc", "dd"}

    def test_floors_present(self, tiny_dataset):
        assert tiny_dataset.floors_present == [0, 1]


class TestLabels:
    def test_ground_truth(self, tiny_dataset):
        assert tiny_dataset.ground_truth == [0, 0, 1, 1, 1]

    def test_ground_truth_requires_labels(self, tiny_dataset):
        stripped = tiny_dataset.strip_labels()
        with pytest.raises(DatasetError):
            _ = stripped.ground_truth

    def test_strip_labels_keeps_anchor(self, tiny_dataset):
        stripped = tiny_dataset.strip_labels(keep_record_ids=["r2"])
        assert stripped.get("r2").floor == 1
        assert stripped.get("r0").floor is None
        assert stripped.num_floors == 2  # declared floor count preserved

    def test_strip_labels_unknown_id(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.strip_labels(keep_record_ids=["nope"])

    def test_pick_labeled_sample_deterministic(self, tiny_dataset):
        assert tiny_dataset.pick_labeled_sample(floor=0).record_id == "r0"

    def test_pick_labeled_sample_random(self, tiny_dataset):
        rng = random.Random(0)
        picked = tiny_dataset.pick_labeled_sample(floor=1, rng=rng)
        assert picked.floor == 1

    def test_pick_labeled_sample_missing_floor(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.pick_labeled_sample(floor=7)


class TestTransforms:
    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset(lambda record: record.floor == 1)
        assert len(subset) == 3

    def test_subset_empty_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.subset(lambda record: False)

    def test_sample(self, tiny_dataset):
        sampled = tiny_dataset.sample(3, rng=random.Random(0))
        assert len(sampled) == 3

    def test_sample_too_many(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.sample(10)

    def test_merge(self, tiny_dataset):
        other = SignalDataset([SignalRecord("x1", {"aa": -44.0}, floor=0)], num_floors=2)
        merged = tiny_dataset.merge(other)
        assert len(merged) == 6

    def test_relabeled(self, tiny_dataset):
        relabeled = tiny_dataset.relabeled({"r0": 1})
        assert relabeled.get("r0").floor == 1
        assert relabeled.get("r1").floor == 0


class TestStatistics:
    def test_mac_frequencies(self, tiny_dataset):
        freqs = tiny_dataset.mac_frequencies()
        assert freqs["aa"] == 3
        assert freqs["dd"] == 2

    def test_mac_floor_coverage(self, tiny_dataset):
        coverage = tiny_dataset.mac_floor_coverage()
        assert coverage["aa"] == {0, 1}
        assert coverage["dd"] == {1}

    def test_by_floor(self, tiny_dataset):
        groups = tiny_dataset.by_floor()
        assert len(groups[0]) == 2
        assert len(groups[1]) == 3

    def test_summary(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary.num_records == 5
        assert summary.num_macs == 4
        assert summary.num_floors == 2
        assert summary.labeled_fraction == 1.0
        assert summary.records_per_floor == {0: 2, 1: 3}
