"""Unit tests for SignalDataset."""

import random

import pytest

from repro.signals.dataset import DatasetError, SignalDataset
from repro.signals.record import SignalRecord
from tests.conftest import make_tiny_records


class TestConstruction:
    def test_basic(self, tiny_dataset):
        assert len(tiny_dataset) == 5
        assert tiny_dataset.building_id == "tiny"
        assert tiny_dataset.num_floors == 2

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            SignalDataset([])

    def test_duplicate_ids_rejected(self):
        record = SignalRecord("r1", {"aa": -50.0})
        with pytest.raises(DatasetError):
            SignalDataset([record, record])

    def test_invalid_num_floors(self):
        with pytest.raises(DatasetError):
            SignalDataset(make_tiny_records(), num_floors=0)

    def test_num_floors_must_cover_labels(self):
        # tiny records go up to floor 1, so a declared count of 1 is stale.
        with pytest.raises(DatasetError, match="cannot cover floor 1"):
            SignalDataset(make_tiny_records(), num_floors=1)

    def test_num_floors_inferred_from_labels(self):
        dataset = SignalDataset(make_tiny_records())
        assert dataset.num_floors == 2

    def test_num_floors_unlabeled_without_declaration(self):
        records = [SignalRecord("r1", {"aa": -50.0}), SignalRecord("r2", {"bb": -60.0})]
        dataset = SignalDataset(records)
        with pytest.raises(DatasetError):
            _ = dataset.num_floors


class TestAccess:
    def test_get_and_index_of(self, tiny_dataset):
        assert tiny_dataset.get("r2").record_id == "r2"
        assert tiny_dataset.index_of("r2") == 2
        assert "r2" in tiny_dataset
        assert "missing" not in tiny_dataset

    def test_iteration_order(self, tiny_dataset):
        assert tiny_dataset.record_ids == ["r0", "r1", "r2", "r3", "r4"]

    def test_macs(self, tiny_dataset):
        assert tiny_dataset.macs == {"aa", "bb", "cc", "dd"}

    def test_floors_present(self, tiny_dataset):
        assert tiny_dataset.floors_present == [0, 1]


class TestLabels:
    def test_ground_truth(self, tiny_dataset):
        assert tiny_dataset.ground_truth == [0, 0, 1, 1, 1]

    def test_ground_truth_requires_labels(self, tiny_dataset):
        stripped = tiny_dataset.strip_labels()
        with pytest.raises(DatasetError):
            _ = stripped.ground_truth

    def test_strip_labels_keeps_anchor(self, tiny_dataset):
        stripped = tiny_dataset.strip_labels(keep_record_ids=["r2"])
        assert stripped.get("r2").floor == 1
        assert stripped.get("r0").floor is None
        assert stripped.num_floors == 2  # declared floor count preserved

    def test_strip_labels_unknown_id(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.strip_labels(keep_record_ids=["nope"])

    def test_pick_labeled_sample_deterministic(self, tiny_dataset):
        assert tiny_dataset.pick_labeled_sample(floor=0).record_id == "r0"

    def test_pick_labeled_sample_random(self, tiny_dataset):
        rng = random.Random(0)
        picked = tiny_dataset.pick_labeled_sample(floor=1, rng=rng)
        assert picked.floor == 1

    def test_pick_labeled_sample_missing_floor(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.pick_labeled_sample(floor=7)


class TestTransforms:
    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset(lambda record: record.floor == 1)
        assert len(subset) == 3

    def test_subset_empty_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.subset(lambda record: False)

    def test_sample(self, tiny_dataset):
        sampled = tiny_dataset.sample(3, rng=random.Random(0))
        assert len(sampled) == 3

    def test_sample_too_many(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.sample(10)

    def test_merge(self, tiny_dataset):
        other = SignalDataset([SignalRecord("x1", {"aa": -44.0}, floor=0)], num_floors=2)
        merged = tiny_dataset.merge(other)
        assert len(merged) == 6

    def test_merge_preserves_order(self, tiny_dataset):
        other = SignalDataset([SignalRecord("x1", {"aa": -44.0})], num_floors=2)
        merged = tiny_dataset.merge(other)
        assert merged.record_ids == tiny_dataset.record_ids + ["x1"]

    def test_merge_duplicate_ids_rejected(self, tiny_dataset):
        other = SignalDataset([SignalRecord("r0", {"aa": -44.0})], num_floors=2)
        with pytest.raises(DatasetError):
            tiny_dataset.merge(other)

    def test_merge_inherits_other_num_floors(self, tiny_dataset):
        undeclared = SignalDataset(make_tiny_records())  # no declared floor count
        declared = SignalDataset([SignalRecord("x1", {"aa": -44.0})], num_floors=9)
        assert undeclared.merge(declared).num_floors == 9
        # The taller declaration wins in either merge order.
        assert tiny_dataset.merge(declared).num_floors == 9
        assert declared.merge(tiny_dataset).num_floors == 9

    def test_merge_of_valid_datasets_stays_valid(self, tiny_dataset):
        # tiny declares 2 floors; the other declares 6 and labels floor 5 —
        # both valid alone, and the merge must not trip the coverage check.
        tall = SignalDataset([SignalRecord("t5", {"aa": -44.0}, floor=5)], num_floors=6)
        merged = tiny_dataset.merge(tall)
        assert merged.num_floors == 6
        assert merged.floors_present == [0, 1, 5]

    def test_merge_building_id_fallback(self, tiny_dataset):
        anonymous = SignalDataset([SignalRecord("x1", {"aa": -44.0})], num_floors=2)
        assert tiny_dataset.merge(anonymous).building_id == "tiny"
        assert anonymous.merge(tiny_dataset).building_id == "tiny"

    def test_relabeled(self, tiny_dataset):
        relabeled = tiny_dataset.relabeled({"r0": 1})
        assert relabeled.get("r0").floor == 1
        assert relabeled.get("r1").floor == 0

    def test_relabeled_unknown_ids_ignored(self, tiny_dataset):
        relabeled = tiny_dataset.relabeled({"ghost": 1})
        assert relabeled.labels == tiny_dataset.labels
        assert relabeled.record_ids == tiny_dataset.record_ids

    def test_relabeled_empty_mapping_is_copy(self, tiny_dataset):
        relabeled = tiny_dataset.relabeled({})
        assert relabeled is not tiny_dataset
        assert relabeled.labels == tiny_dataset.labels

    def test_relabeled_keeps_declared_num_floors(self):
        dataset = SignalDataset(make_tiny_records(), num_floors=6)
        assert dataset.relabeled({"r0": 5}).num_floors == 6

    def test_relabeled_can_label_unlabeled_records(self, tiny_dataset):
        stripped = tiny_dataset.strip_labels()
        relabeled = stripped.relabeled({"r2": 1})
        assert relabeled.get("r2").floor == 1
        assert relabeled.get("r0").floor is None

    def test_holdout_split(self, tiny_dataset):
        train, held = tiny_dataset.holdout_split(train_per_floor=1)
        assert train.record_ids == ["r0", "r2"]  # first record of each floor
        assert [record.record_id for record in held] == ["r1", "r3", "r4"]

    def test_holdout_split_requires_labels(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.strip_labels().holdout_split(train_per_floor=1)

    def test_holdout_split_validates_count(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.holdout_split(train_per_floor=0)


class TestStatistics:
    def test_mac_frequencies(self, tiny_dataset):
        freqs = tiny_dataset.mac_frequencies()
        assert freqs["aa"] == 3
        assert freqs["dd"] == 2

    def test_mac_floor_coverage(self, tiny_dataset):
        coverage = tiny_dataset.mac_floor_coverage()
        assert coverage["aa"] == {0, 1}
        assert coverage["dd"] == {1}

    def test_by_floor(self, tiny_dataset):
        groups = tiny_dataset.by_floor()
        assert len(groups[0]) == 2
        assert len(groups[1]) == 3

    def test_summary(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary.num_records == 5
        assert summary.num_macs == 4
        assert summary.num_floors == 2
        assert summary.labeled_fraction == 1.0
        assert summary.records_per_floor == {0: 2, 1: 3}
