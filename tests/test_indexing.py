"""Tests for cluster similarity, the TSP solvers and the cluster indexers."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.assignments import ClusterAssignment
from repro.indexing.arbitrary import (
    ArbitraryFloorIndexer,
    MiddleFloorAmbiguityError,
    mean_distance_to_cluster,
)
from repro.indexing.indexer import ClusterIndexer, build_tsp_distance_matrix
from repro.indexing.similarity import (
    adapted_jaccard_coefficient,
    adapted_jaccard_similarity_matrix,
    cluster_mac_frequencies,
    jaccard_coefficient,
    jaccard_similarity_matrix,
)
from repro.indexing.tsp import (
    held_karp_path,
    nearest_neighbor_path,
    path_cost,
    solve_shortest_hamiltonian_path,
    two_opt_path,
)
from repro.signals.dataset import SignalDataset
from repro.signals.record import SignalRecord


def chain_dataset(num_floors=4, per_floor=6):
    """A synthetic dataset where floor f's samples see MACs f and f+1 (spillover chain)."""
    records = []
    for floor in range(num_floors):
        for i in range(per_floor):
            readings = {f"mac{floor}": -45.0}
            if floor + 1 < num_floors:
                readings[f"mac{floor + 1}"] = -80.0
            records.append(SignalRecord(f"f{floor}-{i}", readings, floor=floor))
    return SignalDataset(records, num_floors=num_floors, building_id="chain")


def perfect_assignment(dataset):
    labels = np.array([record.floor for record in dataset])
    return ClusterAssignment(labels=labels, num_clusters=dataset.num_floors)


class TestSimilarity:
    def test_mac_frequencies(self):
        dataset = chain_dataset()
        profile = cluster_mac_frequencies(dataset, perfect_assignment(dataset))
        assert profile.num_clusters == 4
        index = profile.macs.index("mac1")
        assert profile.frequencies[0, index] == 6  # floor 0 hears mac1 via spillover
        assert profile.frequencies[1, index] == 6

    def test_jaccard_adjacent_higher_than_distant(self):
        dataset = chain_dataset()
        profile = cluster_mac_frequencies(dataset, perfect_assignment(dataset))
        assert jaccard_coefficient(profile, 0, 1) > jaccard_coefficient(profile, 0, 3)
        assert adapted_jaccard_coefficient(profile, 0, 1) > adapted_jaccard_coefficient(
            profile, 0, 3
        )

    def test_coefficients_bounded_and_symmetric(self):
        dataset = chain_dataset()
        profile = cluster_mac_frequencies(dataset, perfect_assignment(dataset))
        for i, j in itertools.combinations(range(4), 2):
            for coefficient in (jaccard_coefficient, adapted_jaccard_coefficient):
                value = coefficient(profile, i, j)
                assert 0.0 <= value <= 1.0
                assert value == pytest.approx(coefficient(profile, j, i))

    def test_similarity_matrices(self):
        dataset = chain_dataset()
        profile = cluster_mac_frequencies(dataset, perfect_assignment(dataset))
        for matrix in (
            jaccard_similarity_matrix(profile),
            adapted_jaccard_similarity_matrix(profile),
        ):
            assert matrix.shape == (4, 4)
            assert np.allclose(matrix, matrix.T)
            assert np.allclose(np.diag(matrix), 1.0)

    def test_adapted_jaccard_accounts_for_coverage(self):
        # Clusters A and B share a MAC observed by *every* sample, clusters A
        # and C share a MAC observed by a *single* sample in each.  The plain
        # Jaccard coefficient cannot tell the two situations apart (both pairs
        # share one of three MACs); the adapted coefficient must rank the
        # widely-covered overlap higher.
        records = []
        for i in range(10):
            a_readings = {"m_hi": -50.0}
            if i == 0:
                a_readings["rare_a"] = -60.0
            records.append(SignalRecord(f"a{i}", a_readings, floor=0))
            b_readings = {"m_hi": -50.0}
            if i == 0:
                b_readings["rare_b"] = -60.0
            records.append(SignalRecord(f"b{i}", b_readings, floor=1))
            c_readings = {"m_c": -50.0}
            if i == 0:
                c_readings["m_hi"] = -80.0
            records.append(SignalRecord(f"c{i}", c_readings, floor=2))
        dataset = SignalDataset(records, num_floors=3)
        profile = cluster_mac_frequencies(dataset, perfect_assignment(dataset))
        assert jaccard_coefficient(profile, 0, 1) == pytest.approx(
            jaccard_coefficient(profile, 0, 2)
        )
        assert adapted_jaccard_coefficient(profile, 0, 1) > adapted_jaccard_coefficient(
            profile, 0, 2
        )

    def test_length_mismatch_rejected(self):
        dataset = chain_dataset()
        with pytest.raises(ValueError):
            cluster_mac_frequencies(
                dataset, ClusterAssignment(labels=np.zeros(3, dtype=int), num_clusters=1)
            )


class TestTSP:
    def line_distances(self, n=5):
        """Cities on a line: the optimal path from city 0 visits them in order."""
        positions = np.arange(n, dtype=float)
        return np.abs(positions[:, None] - positions[None, :])

    def test_held_karp_on_line(self):
        distances = self.line_distances(6)
        assert held_karp_path(distances, start=0) == [0, 1, 2, 3, 4, 5]

    def test_held_karp_other_start(self):
        distances = self.line_distances(4)
        path = held_karp_path(distances, start=2)
        assert path[0] == 2
        assert sorted(path) == [0, 1, 2, 3]

    def test_held_karp_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.random((6, 2))
        distances = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        best_cost = min(
            path_cost(distances, [0] + list(perm))
            for perm in itertools.permutations(range(1, 6))
        )
        hk = held_karp_path(distances, start=0)
        assert path_cost(distances, hk) == pytest.approx(best_cost)

    def test_two_opt_close_to_optimal(self):
        rng = np.random.default_rng(1)
        points = rng.random((8, 2))
        distances = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        exact = path_cost(distances, held_karp_path(distances, start=0))
        approx = path_cost(distances, two_opt_path(distances, start=0))
        assert approx <= exact * 1.25

    def test_nearest_neighbor_valid_path(self):
        distances = self.line_distances(5)
        path = nearest_neighbor_path(distances, start=3)
        assert sorted(path) == list(range(5))
        assert path[0] == 3

    def test_two_opt_initial_path_validation(self):
        distances = self.line_distances(4)
        with pytest.raises(ValueError):
            two_opt_path(distances, start=0, initial_path=[1, 0, 2, 3])
        with pytest.raises(ValueError):
            two_opt_path(distances, start=0, initial_path=[0, 1, 1, 3])

    def test_path_cost_validation(self):
        distances = self.line_distances(3)
        with pytest.raises(ValueError):
            path_cost(distances, [0, 1])
        with pytest.raises(ValueError):
            path_cost(np.array([[0.0, -1.0], [1.0, 0.0]]), [0, 1])

    def test_dispatcher(self):
        distances = self.line_distances(4)
        assert solve_shortest_hamiltonian_path(distances, 0, "exact") == [0, 1, 2, 3]
        assert sorted(solve_shortest_hamiltonian_path(distances, 0, "two_opt")) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            solve_shortest_hamiltonian_path(distances, 0, "quantum")

    def test_single_city(self):
        assert held_karp_path(np.zeros((1, 1)), 0) == [0]

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=7), seed=st.integers(min_value=0, max_value=50))
    def test_property_two_opt_never_worse_than_greedy(self, n, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((n, 2))
        distances = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        greedy = path_cost(distances, nearest_neighbor_path(distances, 0))
        improved = path_cost(distances, two_opt_path(distances, 0))
        assert improved <= greedy + 1e-9


class TestIndexer:
    def test_build_distance_matrix(self):
        similarity = np.array([[1.0, 0.8, 0.1], [0.8, 1.0, 0.6], [0.1, 0.6, 1.0]])
        distances = build_tsp_distance_matrix(similarity, start=1)
        assert np.all(distances[:, 1] == 0.0)
        assert distances[0, 2] == pytest.approx(0.9)
        with pytest.raises(ValueError):
            build_tsp_distance_matrix(similarity, start=5)

    def test_index_perfect_clusters_bottom_floor(self):
        dataset = chain_dataset(num_floors=5, per_floor=8)
        assignment = perfect_assignment(dataset)
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        result = ClusterIndexer().index(dataset, assignment, anchor, labeled_floor=0)
        assert np.array_equal(result.floor_labels, np.array(dataset.ground_truth))
        assert result.cluster_order[0] == assignment.labels[dataset.index_of(anchor)]

    def test_index_with_shuffled_cluster_ids(self):
        dataset = chain_dataset(num_floors=4, per_floor=6)
        truth = np.array(dataset.ground_truth)
        permutation = np.array([2, 0, 3, 1])  # cluster id = permutation[floor]
        assignment = ClusterAssignment(labels=permutation[truth], num_clusters=4)
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        result = ClusterIndexer().index(dataset, assignment, anchor, labeled_floor=0)
        assert np.array_equal(result.floor_labels, truth)

    def test_index_top_floor_anchor(self):
        dataset = chain_dataset(num_floors=4, per_floor=6)
        assignment = perfect_assignment(dataset)
        anchor = dataset.pick_labeled_sample(floor=3).record_id
        result = ClusterIndexer().index(dataset, assignment, anchor, labeled_floor=3)
        assert np.array_equal(result.floor_labels, np.array(dataset.ground_truth))

    def test_middle_floor_rejected(self):
        dataset = chain_dataset(num_floors=4, per_floor=6)
        assignment = perfect_assignment(dataset)
        anchor = dataset.pick_labeled_sample(floor=1).record_id
        with pytest.raises(ValueError):
            ClusterIndexer().index(dataset, assignment, anchor, labeled_floor=1)

    def test_jaccard_variant_and_two_opt(self):
        dataset = chain_dataset(num_floors=4, per_floor=6)
        assignment = perfect_assignment(dataset)
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        result = ClusterIndexer(similarity="jaccard", tsp_method="two_opt").index(
            dataset, assignment, anchor, labeled_floor=0
        )
        assert np.array_equal(result.floor_labels, np.array(dataset.ground_truth))

    def test_unknown_similarity(self):
        with pytest.raises(ValueError):
            ClusterIndexer(similarity="cosine")


class TestArbitraryFloorIndexer:
    def _embeddings_for(self, dataset):
        """Embeddings where each floor's samples sit near a distinct point on a line."""
        truth = np.array(dataset.ground_truth)
        rng = np.random.default_rng(0)
        base = np.zeros((len(truth), 3))
        base[:, 0] = truth * 2.0
        return base + 0.05 * rng.standard_normal(base.shape)

    def test_arbitrary_floor_recovers_labels(self):
        dataset = chain_dataset(num_floors=5, per_floor=8)
        assignment = perfect_assignment(dataset)
        embeddings = self._embeddings_for(dataset)
        anchor = dataset.pick_labeled_sample(floor=1).record_id
        result = ArbitraryFloorIndexer().index(
            dataset, assignment, anchor, labeled_floor=1, embeddings=embeddings
        )
        assert np.array_equal(result.floor_labels, np.array(dataset.ground_truth))
        assert result.chosen_candidate in result.candidate_clusters

    def test_middle_floor_raises_ambiguity(self):
        dataset = chain_dataset(num_floors=5, per_floor=8)
        assignment = perfect_assignment(dataset)
        embeddings = self._embeddings_for(dataset)
        anchor = dataset.pick_labeled_sample(floor=2).record_id
        with pytest.raises(MiddleFloorAmbiguityError):
            ArbitraryFloorIndexer().index(
                dataset, assignment, anchor, labeled_floor=2, embeddings=embeddings
            )

    def test_floor_out_of_range(self):
        dataset = chain_dataset(num_floors=4, per_floor=6)
        assignment = perfect_assignment(dataset)
        embeddings = self._embeddings_for(dataset)
        with pytest.raises(ValueError):
            ArbitraryFloorIndexer().index(
                dataset, assignment, dataset[0].record_id, labeled_floor=9, embeddings=embeddings
            )

    def test_embedding_shape_check(self):
        dataset = chain_dataset(num_floors=4, per_floor=6)
        assignment = perfect_assignment(dataset)
        with pytest.raises(ValueError):
            ArbitraryFloorIndexer().index(
                dataset,
                assignment,
                dataset[0].record_id,
                labeled_floor=1,
                embeddings=np.zeros((3, 2)),
            )

    def test_mean_distance_to_cluster(self):
        point = np.zeros(2)
        cluster = np.array([[3.0, 4.0], [0.0, 0.0]])
        assert mean_distance_to_cluster(point, cluster) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            mean_distance_to_cluster(point, np.zeros((0, 2)))
