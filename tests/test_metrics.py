"""Tests for ARI, NMI, the Jaro edit distance and accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.accuracy import confusion_matrix, floor_accuracy
from repro.metrics.ari import adjusted_rand_index, rand_index
from repro.metrics.edit_distance import (
    indexing_edit_distance,
    jaro_similarity,
    jaro_winkler_similarity,
)
from repro.metrics.nmi import entropy, mutual_information, normalized_mutual_information

labelings = st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=40)


class TestARI:
    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        assert rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_are_equivalent(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [2, 2, 0, 0, 1, 1]
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_known_value(self):
        # One misplaced point out of six; value verified by brute-force pair counting.
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 1]
        assert adjusted_rand_index(a, b) == pytest.approx(0.3243243, rel=1e-4)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_single_cluster_degenerate(self):
        assert adjusted_rand_index([0, 0, 0], [0, 0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0, 1, 2])
        with pytest.raises(ValueError):
            adjusted_rand_index([], [])

    @settings(max_examples=30, deadline=None)
    @given(labels=labelings)
    def test_property_self_similarity_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(a=labelings, b=labelings)
    def test_property_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))


class TestNMI:
    def test_entropy_uniform(self):
        assert entropy([0, 1, 2, 3]) == pytest.approx(np.log(4))
        assert entropy([0, 0, 0]) == pytest.approx(0.0)

    def test_identical_partitions(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = [0, 0, 1, 1]
        b = [1, 1, 0, 0]
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions(self):
        a = [0, 0, 1, 1]
        b = [0, 1, 0, 1]
        assert normalized_mutual_information(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_mutual_information_non_negative(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 3, 100)
        assert mutual_information(a, b) >= 0.0

    def test_constant_partitions(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(a=labelings, b=labelings)
    def test_property_bounded_and_symmetric(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        value = normalized_mutual_information(a, b)
        assert -1e-9 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(normalized_mutual_information(b, a))


class TestEditDistance:
    def test_identical_sequences(self):
        assert jaro_similarity([1, 2, 3, 4, 5], [1, 2, 3, 4, 5]) == pytest.approx(1.0)

    def test_paper_example_one_transposition(self):
        # The paper's example: predicted [1, 4, 3, 2, 5] vs truth [1, 2, 3, 4, 5].
        value = jaro_similarity([1, 4, 3, 2, 5], [1, 2, 3, 4, 5])
        assert 0.7 < value < 1.0

    def test_disjoint_sequences(self):
        assert jaro_similarity([1, 2], [3, 4]) == 0.0

    def test_empty_sequences(self):
        assert jaro_similarity([], []) == 1.0
        assert jaro_similarity([1], []) == 0.0

    def test_known_string_value(self):
        # Canonical Jaro example: MARTHA vs MARHTA = 0.944...
        assert jaro_similarity("MARTHA", "MARHTA") == pytest.approx(0.9444444, rel=1e-4)

    def test_jaro_winkler_prefix_bonus(self):
        plain = jaro_similarity("MARTHA", "MARHTA")
        winkler = jaro_winkler_similarity("MARTHA", "MARHTA")
        assert winkler > plain
        with pytest.raises(ValueError):
            jaro_winkler_similarity("ab", "ab", prefix_scale=0.5)

    def test_indexing_edit_distance_wrapper(self):
        assert indexing_edit_distance([1, 2, 3], [1, 2, 3]) == 1.0
        assert indexing_edit_distance([3, 2, 1], [1, 2, 3]) < 1.0

    @settings(max_examples=30, deadline=None)
    @given(seq=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=10))
    def test_property_self_similarity(self, seq):
        assert jaro_similarity(seq, seq) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=8),
        b=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=8),
    )
    def test_property_symmetric_and_bounded(self, a, b):
        value = jaro_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro_similarity(b, a))


class TestAccuracy:
    def test_floor_accuracy(self):
        assert floor_accuracy([0, 1, 2], [0, 1, 1]) == pytest.approx(2 / 3)
        assert floor_accuracy([0, 1], [0, 1]) == 1.0

    def test_confusion_matrix(self):
        matrix = confusion_matrix([0, 0, 1], [0, 1, 1], num_classes=2)
        assert matrix.tolist() == [[1, 1], [0, 1]]
        assert matrix.sum() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            floor_accuracy([0, 1], [0])
        with pytest.raises(ValueError):
            floor_accuracy([], [])
        with pytest.raises(ValueError):
            confusion_matrix([0, -1], [0, 1])
