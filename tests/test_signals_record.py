"""Unit tests for the SignalRecord data model."""

import pytest
from hypothesis import given, strategies as st

from repro.signals.record import (
    InvalidRecordError,
    MAX_VALID_RSS_DBM,
    MIN_VALID_RSS_DBM,
    SignalRecord,
)


class TestConstruction:
    def test_basic_record(self):
        record = SignalRecord("r1", {"aa:bb": -50.0, "cc:dd": -70.0}, floor=2)
        assert record.record_id == "r1"
        assert record.floor == 2
        assert len(record) == 2
        assert record.is_labeled

    def test_unlabeled_record(self):
        record = SignalRecord("r1", {"aa": -50.0})
        assert record.floor is None
        assert not record.is_labeled

    def test_empty_readings_rejected(self):
        with pytest.raises(InvalidRecordError):
            SignalRecord("r1", {})

    def test_empty_record_id_rejected(self):
        with pytest.raises(InvalidRecordError):
            SignalRecord("", {"aa": -50.0})

    def test_rss_out_of_range_rejected(self):
        with pytest.raises(InvalidRecordError):
            SignalRecord("r1", {"aa": 10.0})
        with pytest.raises(InvalidRecordError):
            SignalRecord("r1", {"aa": -150.0})

    def test_negative_floor_rejected(self):
        with pytest.raises(InvalidRecordError):
            SignalRecord("r1", {"aa": -50.0}, floor=-1)

    def test_empty_mac_rejected(self):
        with pytest.raises(InvalidRecordError):
            SignalRecord("r1", {"": -50.0})

    def test_rss_coerced_to_float(self):
        record = SignalRecord("r1", {"aa": -50})
        assert isinstance(record.rss("aa"), float)


class TestAccessors:
    def test_contains_and_iter(self):
        record = SignalRecord("r1", {"aa": -50.0, "bb": -60.0})
        assert "aa" in record
        assert "zz" not in record
        assert set(record) == {"aa", "bb"}

    def test_macs_property(self):
        record = SignalRecord("r1", {"aa": -50.0, "bb": -60.0})
        assert record.macs == frozenset({"aa", "bb"})

    def test_rss_lookup(self):
        record = SignalRecord("r1", {"aa": -50.0})
        assert record.rss("aa") == -50.0
        with pytest.raises(KeyError):
            record.rss("bb")

    def test_strongest(self):
        record = SignalRecord("r1", {"aa": -50.0, "bb": -40.0, "cc": -70.0})
        assert record.strongest(1) == (("bb", -40.0),)
        assert [mac for mac, _ in record.strongest(3)] == ["bb", "aa", "cc"]

    def test_strongest_k_validation(self):
        record = SignalRecord("r1", {"aa": -50.0})
        with pytest.raises(ValueError):
            record.strongest(0)

    def test_with_floor_and_without_floor(self):
        record = SignalRecord("r1", {"aa": -50.0}, floor=3)
        assert record.without_floor().floor is None
        assert record.with_floor(1).floor == 1
        # original is unchanged (immutability)
        assert record.floor == 3


class TestSerialization:
    def test_round_trip(self):
        record = SignalRecord(
            "r1",
            {"aa": -50.0, "bb": -61.5},
            floor=2,
            position=(1.5, 2.5),
            device_id="dev1",
            timestamp=12.0,
        )
        restored = SignalRecord.from_dict(record.to_dict())
        assert restored == record

    def test_round_trip_minimal(self):
        record = SignalRecord("r1", {"aa": -50.0})
        restored = SignalRecord.from_dict(record.to_dict())
        assert restored == record
        assert "floor" not in record.to_dict()


@given(
    rss=st.dictionaries(
        st.text(min_size=1, max_size=17),
        st.floats(min_value=MIN_VALID_RSS_DBM, max_value=MAX_VALID_RSS_DBM),
        min_size=1,
        max_size=20,
    ),
    floor=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
)
def test_property_round_trip(rss, floor):
    """Any valid record survives a to_dict/from_dict round trip."""
    record = SignalRecord("rec", rss, floor=floor)
    assert SignalRecord.from_dict(record.to_dict()) == record
