"""Tests for the bipartite graph, alias sampling, random walks and negative sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.alias import BatchedAliasSampler, build_alias_table
from repro.graph.bipartite import BipartiteGraph, NodeKind, rss_edge_weight
from repro.graph.negative_sampling import NegativeSampler
from repro.graph.walks import RandomWalkGenerator, WalkConfig
from repro.signals.record import SignalRecord


class TestEdgeWeight:
    def test_offset(self):
        assert rss_edge_weight(-50.0) == pytest.approx(70.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            rss_edge_weight(-130.0)

    @given(st.floats(min_value=-119.0, max_value=0.0))
    def test_always_positive_in_valid_range(self, rss):
        assert rss_edge_weight(rss) > 0


class TestBipartiteGraph:
    def test_from_dataset_structure(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        assert len(graph.sample_ids) == len(tiny_dataset)
        assert len(graph.mac_ids) == len(tiny_dataset.macs)
        total_readings = sum(len(record) for record in tiny_dataset)
        assert graph.num_edges == total_readings

    def test_sample_order_matches_dataset(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        for index, record in enumerate(tiny_dataset):
            node = graph.node(graph.sample_ids[index])
            assert node.key == record.record_id
            assert node.kind is NodeKind.SAMPLE

    def test_edge_weights_follow_rss(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        sample = graph.sample_node_id("r0")
        mac = graph.mac_node_id("aa")
        assert graph.edge_weight(sample, mac) == pytest.approx(-40.0 + 120.0)
        assert graph.edge_weight(mac, sample) == pytest.approx(80.0)

    def test_edge_weight_missing(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        assert graph.edge_weight(graph.sample_node_id("r0"), graph.mac_node_id("dd")) is None

    def test_add_node_idempotent(self):
        graph = BipartiteGraph()
        first = graph.add_node(NodeKind.MAC, "aa")
        second = graph.add_node(NodeKind.MAC, "aa")
        assert first == second

    def test_add_edge_type_check(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        mac = graph.mac_node_id("aa")
        sample = graph.sample_node_id("r0")
        with pytest.raises(ValueError):
            graph.add_edge(sample, sample, -50.0)
        with pytest.raises(ValueError):
            graph.add_edge(mac, mac, -50.0)

    def test_degrees_and_neighbors(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        sample = graph.sample_node_id("r1")
        assert graph.degree(sample) == 3
        neighbors, weights = graph.neighbor_arrays(sample)
        assert neighbors.shape == weights.shape == (3,)
        assert np.all(weights > 0)

    def test_incremental_add_record(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        before = graph.num_nodes
        new = SignalRecord("new", {"aa": -60.0, "zz": -70.0})
        graph.add_record(new)
        assert graph.num_nodes == before + 2  # one new sample node, one new MAC node
        assert graph.sample_node_id("new") >= 0

    def test_adjacency_matrix_symmetric(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        matrix = graph.adjacency_matrix()
        assert matrix.shape == (graph.num_nodes, graph.num_nodes)
        assert np.allclose(matrix, matrix.T)

    def test_normalized_adjacency_rows(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        matrix = graph.adjacency_matrix(normalize=True)
        assert np.all(np.isfinite(matrix))

    def test_sample_feature_matrix(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        features = graph.sample_feature_matrix(tiny_dataset)
        assert features.shape == (len(tiny_dataset), len(tiny_dataset.macs))
        # missing entries are filled with -120
        assert np.min(features) == -120.0


class TestAliasSampler:
    def test_alias_table_distribution(self):
        prob, alias = build_alias_table(np.array([0.1, 0.2, 0.7]))
        assert prob.shape == alias.shape == (3,)
        assert np.all((0.0 <= prob) & (prob <= 1.0 + 1e-9))

    def test_alias_table_validation(self):
        with pytest.raises(ValueError):
            build_alias_table(np.array([]))
        with pytest.raises(ValueError):
            build_alias_table(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            build_alias_table(np.array([-1.0, 2.0]))

    def test_batched_sampling_shapes(self):
        neighbors = [np.array([1, 2]), np.array([0]), np.array([0, 1])]
        weights = [np.array([1.0, 3.0]), np.array([2.0]), np.array([1.0, 1.0])]
        sampler = BatchedAliasSampler(neighbors, weights, seed=0)
        sampled, sampled_weights = sampler.sample(np.array([0, 1, 2, 0]), 5)
        assert sampled.shape == sampled_weights.shape == (4, 5)
        # node 1 has a single neighbour: every draw must be node 0
        assert np.all(sampled[1] == 0)

    def test_weighted_sampling_bias(self):
        neighbors = [np.array([1, 2])]
        weights = [np.array([1.0, 9.0])]
        sampler = BatchedAliasSampler(neighbors, weights, seed=0)
        sampled, _ = sampler.sample(np.array([0]), 5000)
        frequency_of_2 = float(np.mean(sampled == 2))
        assert 0.85 < frequency_of_2 < 0.95

    def test_uniform_sampling(self):
        neighbors = [np.array([1, 2])]
        weights = [np.array([1.0, 9.0])]
        sampler = BatchedAliasSampler(neighbors, weights, uniform=True, seed=0)
        sampled, _ = sampler.sample(np.array([0]), 5000)
        frequency_of_2 = float(np.mean(sampled == 2))
        assert 0.45 < frequency_of_2 < 0.55

    def test_empty_neighbors_rejected(self):
        with pytest.raises(ValueError):
            BatchedAliasSampler([np.array([], dtype=np.int64)], [np.array([])])

    @settings(max_examples=25, deadline=None)
    @given(weights=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8))
    def test_property_sampled_values_are_neighbors(self, weights):
        neighbor_ids = np.arange(1, len(weights) + 1)
        sampler = BatchedAliasSampler([neighbor_ids], [np.array(weights)], seed=1)
        sampled, sampled_weights = sampler.sample(np.array([0]), 16)
        assert set(sampled.reshape(-1).tolist()) <= set(neighbor_ids.tolist())
        assert np.all(sampled_weights > 0)


class TestRandomWalks:
    def test_walk_length_and_start(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        generator = RandomWalkGenerator(graph, WalkConfig(walk_length=5, walks_per_node=2), seed=0)
        walks = generator.walk_matrix()
        assert walks.shape == (graph.num_nodes * 2, 5)
        assert set(walks[:, 0].tolist()) == set(range(graph.num_nodes))

    def test_walks_alternate_partitions(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        generator = RandomWalkGenerator(graph, seed=0)
        walk = generator.walk_from(graph.sample_node_id("r0"))
        kinds = [graph.node(node).kind for node in walk]
        for first, second in zip(kinds, kinds[1:]):
            assert first != second  # bipartite: walk alternates MAC / sample

    def test_pairs_from_walk_window(self):
        pairs = RandomWalkGenerator.pairs_from_walk([1, 2, 3], window_size=1)
        assert (1, 2) in pairs and (2, 1) in pairs
        assert (1, 3) not in pairs

    def test_positive_pairs_no_self_pairs(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        generator = RandomWalkGenerator(graph, seed=0)
        pairs = generator.positive_pairs()
        assert pairs.shape[1] == 2
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkConfig(walk_length=1)
        with pytest.raises(ValueError):
            WalkConfig(walks_per_node=0)
        with pytest.raises(ValueError):
            WalkConfig(window_size=0)

    def test_reproducible(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        a = RandomWalkGenerator(graph, seed=3).walk_matrix()
        b = RandomWalkGenerator(graph, seed=3).walk_matrix()
        assert np.array_equal(a, b)


class TestNegativeSampler:
    def test_sample_shapes(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        sampler = NegativeSampler(graph, seed=0)
        assert sampler.sample(10).shape == (10,)
        assert sampler.sample_for_pairs(7, 4).shape == (7, 4)

    def test_probabilities_sum_to_one(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        sampler = NegativeSampler(graph, seed=0)
        assert sampler.probabilities.sum() == pytest.approx(1.0)

    def test_degree_bias(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        sampler = NegativeSampler(graph, seed=0)
        degrees = graph.degrees()
        probabilities = sampler.probabilities
        # a higher-degree node never has a lower sampling probability
        order = np.argsort(degrees)
        assert probabilities[order[-1]] >= probabilities[order[0]]

    def test_restrict_to(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        sample_ids = np.array(graph.sample_ids)
        sampler = NegativeSampler(graph, seed=0, restrict_to=sample_ids)
        drawn = sampler.sample(50)
        assert set(drawn.tolist()) <= set(sample_ids.tolist())

    def test_validation(self, tiny_dataset):
        graph = BipartiteGraph.from_dataset(tiny_dataset)
        with pytest.raises(ValueError):
            NegativeSampler(graph, exponent=-1.0)
        sampler = NegativeSampler(graph)
        with pytest.raises(ValueError):
            sampler.sample(0)
