"""Tests for the RF-GNN encoder: samplers, aggregators, model, loss and trainer."""

import numpy as np
import pytest

from repro.gnn.aggregators import MeanAggregator, WeightedAggregator, get_aggregator
from repro.gnn.loss import negative_sampling_loss
from repro.gnn.model import RFGNN, RFGNNConfig
from repro.gnn.samplers import NeighborSampler, SampledNeighborhood
from repro.gnn.trainer import RFGNNTrainer
from repro.graph.bipartite import BipartiteGraph
from repro.nn.activations import sigmoid


@pytest.fixture
def tiny_graph(tiny_dataset):
    return BipartiteGraph.from_dataset(tiny_dataset)


class TestConfig:
    def test_defaults(self):
        config = RFGNNConfig()
        assert config.num_hops == 2
        assert config.attention is True
        assert config.resolved_input_dim == config.embedding_dim

    def test_input_dim_override(self):
        assert RFGNNConfig(embedding_dim=16, input_dim=8).resolved_input_dim == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RFGNNConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            RFGNNConfig(num_hops=2, neighbor_sample_sizes=(5,))
        with pytest.raises(ValueError):
            RFGNNConfig(neighbor_sample_sizes=(0, 5))


class TestSampler:
    def test_shapes(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, seed=0)
        sampled = sampler.sample([0, 1, 2], 4)
        assert sampled.neighbors.shape == (3, 4)
        assert sampled.edge_weights.shape == (3, 4)

    def test_sampled_nodes_are_neighbors(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, seed=0)
        target = tiny_graph.sample_node_id("r1")
        sampled = sampler.sample([target], 20)
        assert set(sampled.neighbors.reshape(-1).tolist()) <= set(tiny_graph.neighbors(target))

    def test_full_neighborhood(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, seed=0)
        target = tiny_graph.sample_node_id("r1")
        full = sampler.full_neighborhood(target)
        assert full.neighbors.shape[1] == tiny_graph.degree(target)

    def test_weighted_prefers_strong_edges(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph, weighted=True, seed=0)
        target = tiny_graph.sample_node_id("r1")  # readings -42, -60, -80
        strong_mac = tiny_graph.mac_node_id("aa")
        weak_mac = tiny_graph.mac_node_id("cc")
        sampled = sampler.sample([target], 3000).neighbors.reshape(-1)
        assert np.sum(sampled == strong_mac) > np.sum(sampled == weak_mac)

    def test_validation(self, tiny_graph):
        sampler = NeighborSampler(tiny_graph)
        with pytest.raises(ValueError):
            sampler.sample([0], 0)

    def test_neighborhood_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SampledNeighborhood(neighbors=np.zeros((2, 3)), edge_weights=np.zeros((2, 4)))


class TestAggregators:
    def test_weighted_coefficients(self):
        weights = np.array([[1.0, 3.0], [2.0, 2.0]])
        coefficients = WeightedAggregator().coefficients(weights)
        assert np.allclose(coefficients.sum(axis=1), 1.0)
        assert coefficients[0, 1] == pytest.approx(0.75)

    def test_mean_coefficients(self):
        weights = np.array([[1.0, 3.0, 5.0]])
        coefficients = MeanAggregator().coefficients(weights)
        assert np.allclose(coefficients, 1.0 / 3.0)

    def test_weighted_rejects_non_positive(self):
        with pytest.raises(ValueError):
            WeightedAggregator().coefficients(np.array([[0.0, 1.0]]))

    def test_lookup(self):
        assert isinstance(get_aggregator("weighted"), WeightedAggregator)
        assert isinstance(get_aggregator("mean"), MeanAggregator)
        with pytest.raises(ValueError):
            get_aggregator("max")


class TestLoss:
    def test_perfect_embeddings_have_low_loss(self):
        target = np.array([[1.0, 0.0]])
        context = np.array([[1.0, 0.0]])
        negatives = np.array([[[-1.0, 0.0], [-1.0, 0.0]]])
        loss, *_ = negative_sampling_loss(target, context, negatives)
        bad_loss, *_ = negative_sampling_loss(target, -context, -negatives)
        assert loss < bad_loss

    def test_gradient_signs(self):
        target = np.array([[1.0, 0.0]])
        context = np.array([[0.0, 1.0]])
        negatives = np.array([[[1.0, 0.0]]])
        _, grad_target, grad_context, grad_negative = negative_sampling_loss(
            target, context, negatives
        )
        # moving the target towards the context reduces the loss
        assert grad_target[0] @ context[0] < 0
        # moving the negative towards the target increases the loss
        assert grad_negative[0, 0] @ target[0] > 0
        assert grad_context.shape == context.shape

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        target = rng.standard_normal((3, 4))
        context = rng.standard_normal((3, 4))
        negatives = rng.standard_normal((3, 2, 4))
        loss, grad_target, _, _ = negative_sampling_loss(target, context, negatives)
        eps = 1e-6
        for index in [(0, 0), (1, 2), (2, 3)]:
            perturbed = target.copy()
            perturbed[index] += eps
            plus, *_ = negative_sampling_loss(perturbed, context, negatives)
            perturbed[index] -= 2 * eps
            minus, *_ = negative_sampling_loss(perturbed, context, negatives)
            numeric = (plus - minus) / (2 * eps)
            assert grad_target[index] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            negative_sampling_loss(np.zeros((2, 3)), np.zeros((3, 3)), np.zeros((2, 1, 3)))
        with pytest.raises(ValueError):
            negative_sampling_loss(np.zeros((2, 3)), np.zeros((2, 3)), np.zeros((2, 3)))

    def test_sigmoid_consistency(self):
        # the loss at score 0 should equal (1 + tau) * log 2
        target = np.array([[0.0, 0.0]])
        context = np.array([[1.0, 0.0]])
        negatives = np.zeros((1, 4, 2))
        loss, *_ = negative_sampling_loss(target, context, negatives)
        assert loss == pytest.approx(5 * np.log(2.0), rel=1e-6)
        assert sigmoid(0.0) == pytest.approx(0.5)


class TestModel:
    def test_forward_shape_and_norm(self, tiny_graph):
        model = RFGNN(
            tiny_graph, RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(3, 2)), seed=0
        )
        embeddings = model.forward(np.arange(4))
        assert embeddings.shape == (4, 8)
        assert np.allclose(np.linalg.norm(embeddings, axis=1), 1.0)

    def test_embed_nodes_all(self, tiny_graph):
        model = RFGNN(
            tiny_graph, RFGNNConfig(embedding_dim=4, neighbor_sample_sizes=(3, 2)), seed=0
        )
        embeddings = model.embed_nodes()
        assert embeddings.shape == (tiny_graph.num_nodes, 4)

    def test_embed_record_nodes_order(self, tiny_graph, tiny_dataset):
        model = RFGNN(
            tiny_graph, RFGNNConfig(embedding_dim=4, neighbor_sample_sizes=(3, 2)), seed=0
        )
        embeddings = model.embed_record_nodes()
        assert embeddings.shape == (len(tiny_dataset), 4)

    def test_inference_sample_sizes_override(self, tiny_graph):
        config = RFGNNConfig(embedding_dim=4, neighbor_sample_sizes=(3, 2))
        model = RFGNN(tiny_graph, config, seed=0)
        embeddings = model.embed_nodes(sample_sizes=(6, 4))
        assert embeddings.shape == (tiny_graph.num_nodes, 4)
        assert model.config.neighbor_sample_sizes == (3, 2)  # restored afterwards
        with pytest.raises(ValueError):
            model.embed_nodes(sample_sizes=(6,))

    def test_backward_requires_forward(self, tiny_graph):
        model = RFGNN(tiny_graph, RFGNNConfig(embedding_dim=4, neighbor_sample_sizes=(3, 2)))
        with pytest.raises(RuntimeError):
            model.backward(np.zeros((2, 4)))

    def test_gradient_check_weights_and_features(self, tiny_graph):
        config = RFGNNConfig(embedding_dim=4, input_dim=4, neighbor_sample_sizes=(3, 2))
        model = RFGNN(tiny_graph, config, seed=0)
        targets = np.arange(4)

        # Freeze the neighbourhood sampling so finite differences see the same graph.
        cache = {}
        original_sample = model.sampler.sample

        def fixed_sample(nodes, size):
            key = (tuple(np.asarray(nodes).tolist()), size)
            if key not in cache:
                cache[key] = original_sample(nodes, size)
            return cache[key]

        model.sampler.sample = fixed_sample
        reference = np.linspace(0.0, 1.0, 4 * config.embedding_dim).reshape(4, -1)

        def loss():
            embeddings = model.forward(targets)
            return 0.5 * float(np.sum((embeddings - reference) ** 2)), embeddings - reference

        _, grad_embeddings = loss()
        model.zero_grad()
        model.backward(grad_embeddings)
        eps = 1e-6
        # check a few W entries
        for layer in range(2):
            weight = model.weights[layer]
            analytic = model.weight_grads[layer]
            for index in [(0, 0), (1, 2)]:
                original = weight[index]
                weight[index] = original + eps
                plus, _ = loss()
                weight[index] = original - eps
                minus, _ = loss()
                weight[index] = original
                assert analytic[index] == pytest.approx(
                    (plus - minus) / (2 * eps), rel=1e-3, abs=1e-7
                )
        # check one feature entry
        node = int(model._cache is None) * 0  # always node 0
        original = model.node_features[node, 0]
        model.node_features[node, 0] = original + eps
        plus, _ = loss()
        model.node_features[node, 0] = original - eps
        minus, _ = loss()
        model.node_features[node, 0] = original
        assert model.feature_grads[node, 0] == pytest.approx(
            (plus - minus) / (2 * eps), rel=1e-3, abs=1e-7
        )

    def test_no_attention_uses_mean_aggregator(self, tiny_graph):
        model = RFGNN(tiny_graph, RFGNNConfig(attention=False, neighbor_sample_sizes=(3, 2)))
        assert isinstance(model.aggregator, MeanAggregator)

    def test_frozen_features_have_no_feature_group(self, tiny_graph):
        model = RFGNN(
            tiny_graph,
            RFGNNConfig(neighbor_sample_sizes=(3, 2), train_node_features=False),
        )
        names = [set(group) for group in model.parameters()]
        assert {"features"} not in names


class TestTrainer:
    def test_training_reduces_loss(self, small_building_dataset):
        graph = BipartiteGraph.from_dataset(small_building_dataset)
        config = RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(8, 4))
        trainer = RFGNNTrainer(graph, config, num_epochs=3, seed=0, max_pairs_per_epoch=8000)
        trainer.fit()
        assert trainer.history.num_epochs == 3
        assert trainer.history.final_loss < trainer.history.epoch_losses[0]

    def test_embeddings_shape(self, small_building_dataset):
        graph = BipartiteGraph.from_dataset(small_building_dataset)
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(6, 3))
        trainer = RFGNNTrainer(graph, config, num_epochs=1, seed=0, max_pairs_per_epoch=4000)
        all_embeddings = trainer.fit()
        assert all_embeddings.shape == (graph.num_nodes, 8)
        sample_embeddings = trainer.sample_embeddings()
        assert sample_embeddings.shape == (len(small_building_dataset), 8)

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            RFGNNTrainer(tiny_graph, num_epochs=0)
        with pytest.raises(ValueError):
            RFGNNTrainer(tiny_graph, batch_size=0)
        with pytest.raises(ValueError):
            RFGNNTrainer(tiny_graph, negatives_per_pair=0)

    def test_history_final_loss_requires_epochs(self, tiny_graph):
        trainer = RFGNNTrainer(tiny_graph, RFGNNConfig(neighbor_sample_sizes=(3, 2)))
        with pytest.raises(ValueError):
            _ = trainer.history.final_loss
