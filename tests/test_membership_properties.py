"""Property tests for the membership math under the live-operations API.

The guarantees join/drain/replication lean on are ring-geometry facts, so
they get property-level coverage: a single ``with_entry``/``without``
remaps a bounded slice of the fleet and touches no other key, removal
promotes exactly each key's follower, and replication never places a
primary and its follower on the same shard.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.sharded import ConsistentHashRing

KEYS = [f"building-{i}" for i in range(400)]

entry_sets = st.lists(
    st.integers(min_value=0, max_value=50), min_size=2, max_size=8, unique=True
)


@settings(max_examples=30, deadline=None)
@given(entries=entry_sets, data=st.data())
def test_without_moves_only_the_removed_entrys_keys(entries, data):
    removed = data.draw(st.sampled_from(entries))
    ring = ConsistentHashRing(entries)
    resized = ring.without(removed)
    for key in KEYS:
        before = ring.shard_for(key)
        after = resized.shard_for(key)
        if before != removed:
            assert after == before
        else:
            assert after != removed


@settings(max_examples=30, deadline=None)
@given(entries=entry_sets, data=st.data())
def test_removal_promotes_exactly_the_follower(entries, data):
    """The new owner after a removal is the old ring's second replica.

    This is the identity warm-follower failover rests on: a follower kept
    hot by ``warm_followers`` is, by construction, the shard every one of
    the primary's keys lands on when the primary leaves the ring.
    """
    removed = data.draw(st.sampled_from(entries))
    ring = ConsistentHashRing(entries)
    resized = ring.without(removed)
    for key in KEYS:
        if ring.shard_for(key) == removed:
            assert resized.shard_for(key) == ring.shards_for(key, 2)[1]


@settings(max_examples=30, deadline=None)
@given(entries=entry_sets, new_entry=st.integers(min_value=100, max_value=199))
def test_with_entry_steals_a_bounded_slice_and_nothing_else(entries, new_entry):
    ring = ConsistentHashRing(entries)
    grown = ring.with_entry(new_entry)
    moved = 0
    for key in KEYS:
        before = ring.shard_for(key)
        after = grown.shard_for(key)
        if after != before:
            # A join only ever moves keys *onto* the newcomer.
            assert after == new_entry
            moved += 1
    # Expected share is B/N on the grown ring; 64 vnodes per entry keep
    # the variance modest, so twice the fair share is a generous slack
    # that still rules out quadratic remapping.
    fair_share = math.ceil(len(KEYS) / grown.num_shards)
    assert moved <= 2 * fair_share


@settings(max_examples=30, deadline=None)
@given(entries=entry_sets)
def test_replication_never_collocates_primary_and_follower(entries):
    ring = ConsistentHashRing(entries)
    count = min(2, ring.num_shards)
    for key in KEYS[:100]:
        owners = ring.shards_for(key, count)
        assert owners[0] == ring.shard_for(key)
        assert len(owners) == len(set(owners)) == count


def test_shards_for_validates_and_clamps():
    ring = ConsistentHashRing(3)
    with pytest.raises(ValueError):
        ring.shards_for("b", 0)
    assert len(ring.shards_for("b", 10)) == 3
    assert ring.shards_for("b", 1) == (ring.shard_for("b"),)
