"""Tests for the NumPy neural-network substrate (layers, activations, optimisers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.activations import ReLU, Sigmoid, Tanh, get_activation, sigmoid
from repro.nn.init import glorot_uniform, random_node_features
from repro.nn.layers import Dense, L2Normalize, Sequential
from repro.nn.optimizers import SGD, Adam, clip_gradients


class TestInit:
    def test_glorot_shape_and_range(self):
        rng = np.random.default_rng(0)
        weights = glorot_uniform(10, 20, rng)
        limit = np.sqrt(6.0 / 30.0)
        assert weights.shape == (10, 20)
        assert np.all(np.abs(weights) <= limit)

    def test_glorot_validation(self):
        with pytest.raises(ValueError):
            glorot_uniform(0, 5, np.random.default_rng(0))

    def test_random_node_features_normalized(self):
        features = random_node_features(7, 5, np.random.default_rng(0))
        assert features.shape == (7, 5)
        assert np.allclose(np.linalg.norm(features, axis=1), 1.0)

    def test_random_node_features_unnormalized(self):
        features = random_node_features(7, 5, np.random.default_rng(0), normalize=False)
        assert not np.allclose(np.linalg.norm(features, axis=1), 1.0)


class TestActivations:
    def test_sigmoid_extremes(self):
        assert sigmoid(100.0) == pytest.approx(1.0)
        assert sigmoid(-100.0) == pytest.approx(0.0, abs=1e-12)
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_lookup(self):
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("TANH"), Tanh)
        with pytest.raises(ValueError):
            get_activation("swishy")

    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "identity"])
    def test_derivative_matches_finite_difference(self, name):
        activation = get_activation(name)
        x = np.linspace(-2.0, 2.0, 41) + 0.011  # avoid the ReLU kink at exactly 0
        y = activation.forward(x)
        analytic = activation.backward(x, y)
        eps = 1e-6
        numeric = (activation.forward(x + eps) - activation.forward(x - eps)) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_sigmoid_activation_class(self):
        activation = Sigmoid()
        x = np.array([0.0, 2.0])
        y = activation.forward(x)
        assert np.all((0 < y) & (y < 1))


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, activation="relu", rng=np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, activation="tanh", rng=rng)
        x = rng.standard_normal((6, 4))
        target = rng.standard_normal((6, 3))

        def loss():
            out = layer.forward(x)
            return 0.5 * np.sum((out - target) ** 2), out - target

        value, grad_out = loss()
        layer.zero_grad()
        layer.backward(grad_out)
        analytic = layer.grads["W"].copy()
        eps = 1e-6
        for index in [(0, 0), (1, 2), (3, 1)]:
            original = layer.params["W"][index]
            layer.params["W"][index] = original + eps
            plus, _ = loss()
            layer.params["W"][index] = original - eps
            minus, _ = loss()
            layer.params["W"][index] = original
            numeric = (plus - minus) / (2 * eps)
            assert analytic[index] == pytest.approx(numeric, rel=1e-4)

    def test_backward_before_forward(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_bias_toggle(self):
        layer = Dense(2, 2, use_bias=False)
        assert "b" not in layer.params


class TestL2Normalize:
    def test_forward_unit_norm(self):
        layer = L2Normalize()
        out = layer.forward(np.array([[3.0, 4.0], [0.0, 2.0]]))
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_gradient_orthogonal_to_output(self):
        layer = L2Normalize()
        x = np.array([[1.0, 2.0, 2.0]])
        y = layer.forward(x)
        grad = layer.backward(np.array([[1.0, 0.0, 0.0]]))
        # the input gradient of a norm-preserving map has no radial component
        assert float(np.abs((grad * x).sum())) < 1e-9 + abs(float((y * x).sum())) * 1e-6 + 1e-6


class TestSequential:
    def test_autoencoder_learns_identity_direction(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            [Dense(4, 8, activation="tanh", rng=rng), Dense(8, 4, activation="identity", rng=rng)]
        )
        x = rng.standard_normal((32, 4))
        optimizer = Adam(model.parameters(), model.gradients(), lr=0.01)
        first_loss = None
        for _ in range(200):
            out = model.forward(x)
            loss = float(np.mean((out - x) ** 2))
            if first_loss is None:
                first_loss = loss
            model.zero_grad()
            model.backward(2.0 * (out - x) / x.shape[0])
            optimizer.step()
        assert loss < first_loss * 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestOptimizers:
    def _quadratic_problem(self):
        params = [{"w": np.array([5.0, -3.0])}]
        grads = [{"w": np.zeros(2)}]
        return params, grads

    def test_sgd_converges(self):
        params, grads = self._quadratic_problem()
        optimizer = SGD(params, grads, lr=0.1)
        for _ in range(200):
            grads[0]["w"][...] = 2.0 * params[0]["w"]
            optimizer.step()
        assert np.allclose(params[0]["w"], 0.0, atol=1e-3)

    def test_sgd_momentum_converges(self):
        params, grads = self._quadratic_problem()
        optimizer = SGD(params, grads, lr=0.05, momentum=0.9)
        for _ in range(200):
            grads[0]["w"][...] = 2.0 * params[0]["w"]
            optimizer.step()
        assert np.allclose(params[0]["w"], 0.0, atol=1e-2)

    def test_adam_converges(self):
        params, grads = self._quadratic_problem()
        optimizer = Adam(params, grads, lr=0.2)
        for _ in range(300):
            grads[0]["w"][...] = 2.0 * params[0]["w"]
            optimizer.step()
        assert np.allclose(params[0]["w"], 0.0, atol=1e-2)

    def test_zero_grad(self):
        params, grads = self._quadratic_problem()
        grads[0]["w"][...] = 3.0
        SGD(params, grads, lr=0.1).zero_grad()
        assert np.all(grads[0]["w"] == 0.0)

    def test_validation(self):
        params, grads = self._quadratic_problem()
        with pytest.raises(ValueError):
            SGD(params, grads, lr=-1.0)
        with pytest.raises(ValueError):
            SGD(params, grads, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(params, [], lr=0.1)

    def test_clip_gradients(self):
        grads = [{"w": np.array([30.0, 40.0])}]
        norm = clip_gradients(grads, max_norm=5.0)
        assert norm == pytest.approx(50.0)
        assert np.linalg.norm(grads[0]["w"]) == pytest.approx(5.0)

    def test_clip_noop_below_threshold(self):
        grads = [{"w": np.array([0.3, 0.4])}]
        clip_gradients(grads, max_norm=5.0)
        assert np.allclose(grads[0]["w"], [0.3, 0.4])

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=6))
    def test_property_clip_never_exceeds_max(self, values):
        grads = [{"w": np.array(values, dtype=np.float64)}]
        clip_gradients(grads, max_norm=1.0)
        assert np.linalg.norm(grads[0]["w"]) <= 1.0 + 1e-9
