"""SparseAdam must be *bit-identical* to dense Adam, not merely close.

The fused training path relies on row-sparse lazy updates of the node
feature matrix being indistinguishable — to the last ULP — from dense Adam
fed the equivalent zero-padded gradients.  These tests drive both
optimisers through identical random schedules (random touched-row subsets,
random catch-up supersets, gaps of many untouched steps) and assert exact
array equality of parameters *and* both moment buffers after ``flush()``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.optimizers import Adam
from repro.nn.sparse import SparseAdam

NUM_ROWS = 12
DIM = 4


def make_pair(seed: int, lr: float = 0.05):
    """Identical (dense Adam, SparseAdam) setups over one shared init."""
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((DIM, DIM))
    features = rng.standard_normal((NUM_ROWS, DIM))

    dense_params = [{"W": weight.copy()}, {"features": features.copy()}]
    dense_grads = [
        {key: np.zeros_like(value) for key, value in group.items()}
        for group in dense_params
    ]
    sparse_params = [{"W": weight.copy()}, {"features": features.copy()}]
    sparse_grads = [
        {key: np.zeros_like(value) for key, value in group.items()}
        for group in sparse_params
    ]
    dense = Adam(dense_params, dense_grads, lr=lr)
    sparse = SparseAdam(sparse_params, sparse_grads, lr=lr, sparse_keys=("features",))
    return dense, sparse


def run_schedule(dense: Adam, sparse: SparseAdam, schedule, seed: int) -> None:
    """Drive both optimisers through one schedule of (touched, read) steps.

    ``schedule`` is a list of ``(touched_rows, extra_read_rows)`` pairs; the
    dense reference scatters each step's compact row gradients into a full
    zero matrix, the sparse path passes them compactly and catches up the
    read set (a superset of the touched set, like a forward pass's bottom
    tree level) beforehand.
    """
    rng = np.random.default_rng(seed + 1000)
    for touched, extra_read in schedule:
        touched = np.asarray(sorted(touched), dtype=np.int64)
        read = np.asarray(sorted(set(touched) | set(extra_read)), dtype=np.int64)
        w_grad = rng.standard_normal((DIM, DIM))
        row_grads = rng.standard_normal((touched.size, DIM))

        dense.grads[0]["W"][...] = w_grad
        dense.grads[1]["features"][...] = 0.0
        dense.grads[1]["features"][touched] = row_grads
        dense.step()

        sparse.catch_up("features", read)
        sparse.grads[0]["W"][...] = w_grad
        sparse.step(sparse_grads={"features": (touched, row_grads)})


def assert_states_identical(dense: Adam, sparse: SparseAdam) -> None:
    sparse.flush()
    for group_index in range(2):
        for key in dense.params[group_index]:
            assert np.array_equal(
                dense.params[group_index][key], sparse.params[group_index][key]
            ), f"param {key} diverged"
            assert np.array_equal(
                dense._m[group_index][key], sparse._m[group_index][key]
            ), f"first moment of {key} diverged"
            assert np.array_equal(
                dense._v[group_index][key], sparse._v[group_index][key]
            ), f"second moment of {key} diverged"


row_subsets = st.sets(st.integers(min_value=0, max_value=NUM_ROWS - 1), max_size=NUM_ROWS)


class TestBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        schedule=st.lists(st.tuples(row_subsets, row_subsets), min_size=1, max_size=10),
    )
    def test_random_touch_patterns_match_dense_bitwise(self, seed, schedule):
        """The core property: any touch pattern, any gap, any read superset."""
        dense, sparse = make_pair(seed)
        run_schedule(dense, sparse, schedule, seed)
        assert_states_identical(dense, sparse)

    def test_long_gap_replay(self):
        """A row touched once then idle for many steps decays identically."""
        dense, sparse = make_pair(3)
        schedule = [({0, 1, 2}, set())] + [({5}, set())] * 12 + [({0}, {1})]
        run_schedule(dense, sparse, schedule, 3)
        assert_states_identical(dense, sparse)

    def test_never_touched_rows_are_untouched_memory(self):
        """Rows no step ever touches keep their exact initial bits."""
        dense, sparse = make_pair(4)
        before = sparse.params[1]["features"][[7, 8, 9]].copy()
        run_schedule(dense, sparse, [({0, 1}, {2}), ({1, 3}, set())], 4)
        assert_states_identical(dense, sparse)
        assert np.array_equal(sparse.params[1]["features"][[7, 8, 9]], before)

    def test_empty_step_then_flush(self):
        """Steps that touch nothing still advance time for later replays."""
        dense, sparse = make_pair(5)
        schedule = [({0}, set()), (set(), set()), (set(), set()), ({0}, set())]
        run_schedule(dense, sparse, schedule, 5)
        assert_states_identical(dense, sparse)

    def test_flush_is_idempotent(self):
        dense, sparse = make_pair(6)
        run_schedule(dense, sparse, [({0, 4}, set()), ({2}, set())], 6)
        sparse.flush()
        snapshot = sparse.params[1]["features"].copy()
        sparse.flush()
        assert np.array_equal(sparse.params[1]["features"], snapshot)
        assert_states_identical(dense, sparse)


class TestContract:
    def test_step_requires_sparse_grads(self):
        _, sparse = make_pair(0)
        with pytest.raises(ValueError, match="missing sparse gradients"):
            sparse.step()

    def test_step_on_stale_rows_raises(self):
        _, sparse = make_pair(0)
        rows = np.array([0], dtype=np.int64)
        grads = np.ones((1, DIM))
        sparse.step(sparse_grads={"features": (rows, grads)})
        # Two steps later, row 0 is stale; stepping it without catch_up
        # would silently skip its decay — must raise instead.
        empty = (np.empty(0, dtype=np.int64), np.empty((0, DIM)))
        sparse.step(sparse_grads={"features": empty})
        sparse.step(sparse_grads={"features": empty})
        with pytest.raises(RuntimeError, match="not caught up"):
            sparse.step(sparse_grads={"features": (rows, grads)})

    def test_sparse_param_must_be_2d(self):
        params = [{"features": np.zeros(5)}]
        grads = [{"features": np.zeros(5)}]
        with pytest.raises(ValueError, match="must be 2-D"):
            SparseAdam(params, grads, sparse_keys=("features",))

    def test_sparse_key_unique_across_groups(self):
        params = [{"features": np.zeros((2, 2))}, {"features": np.zeros((3, 2))}]
        grads = [{"features": np.zeros((2, 2))}, {"features": np.zeros((3, 2))}]
        with pytest.raises(ValueError, match="two groups"):
            SparseAdam(params, grads, sparse_keys=("features",))

    def test_zero_grad_skips_sparse_keys(self):
        _, sparse = make_pair(1)
        sparse.grads[0]["W"][...] = 7.0
        sparse.zero_grad()
        assert np.all(sparse.grads[0]["W"] == 0.0)
