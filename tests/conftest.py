"""Shared fixtures: small synthetic datasets reused across the test suite."""

from __future__ import annotations

import pytest

from repro.signals.dataset import SignalDataset
from repro.signals.record import SignalRecord
from repro.simulate.collector import CollectionConfig
from repro.simulate.generators import BuildingConfig, generate_building_dataset


def make_tiny_records():
    """A handful of hand-written records spanning two floors."""
    return [
        SignalRecord("r0", {"aa": -40.0, "bb": -55.0}, floor=0),
        SignalRecord("r1", {"aa": -42.0, "bb": -60.0, "cc": -80.0}, floor=0),
        SignalRecord("r2", {"bb": -50.0, "cc": -45.0}, floor=1),
        SignalRecord("r3", {"cc": -48.0, "dd": -52.0}, floor=1),
        SignalRecord("r4", {"aa": -70.0, "dd": -50.0}, floor=1),
    ]


@pytest.fixture
def tiny_dataset() -> SignalDataset:
    """Five hand-written records, two floors, four MACs."""
    return SignalDataset(make_tiny_records(), building_id="tiny", num_floors=2)


def small_building_config(num_floors: int = 3, samples_per_floor: int = 25) -> BuildingConfig:
    """A small, fast-to-generate simulated building for tests."""
    return BuildingConfig(
        num_floors=num_floors,
        aps_per_floor=8,
        width_m=60.0,
        depth_m=40.0,
        ap_tx_power_dbm=15.0,
        collection=CollectionConfig(
            samples_per_floor=samples_per_floor,
            scans_per_contributor=10,
            sensitivity_dbm=-90.0,
        ),
        building_id=f"test-{num_floors}f",
    )


@pytest.fixture(scope="session")
def small_building_dataset() -> SignalDataset:
    """A simulated 3-floor building with 25 labeled samples per floor."""
    return generate_building_dataset(small_building_config(), seed=7)


@pytest.fixture(scope="session")
def medium_building_dataset() -> SignalDataset:
    """A simulated 4-floor building with 40 labeled samples per floor."""
    return generate_building_dataset(
        small_building_config(num_floors=4, samples_per_floor=40), seed=11
    )
