"""Tests for the guarded refresh lifecycle.

Covers the lifecycle added on top of the bare incremental refresh: versioned
artifact history behind an atomically swapped ``CURRENT`` pointer, canary
validation that rejects a refresh candidate *before* it replaces the serving
generation, operator rollback (registry, fleet server, and sharded fleet),
the supersede-race gating of the refresh write-through, and the background
refresh scheduler.  The degrading-refresh fixtures come from
:func:`repro.simulate.generate_degrading_scenario` — a wave whose training
slice genuinely makes the model worse, pinned at a seed where the damage is
unambiguous (label stability collapses and holdout accuracy goes to zero).
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import FisOne, FisOneConfig
from repro.core.refresh import (
    CanaryScore,
    RefreshUnavailableError,
    score_refresh_canary,
)
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    ArtifactError,
    BuildingRegistry,
    CanaryPolicy,
    DriftThresholds,
    FleetServer,
    RefreshPolicy,
    RefreshRejectedError,
    RefreshScheduler,
    ShardedFleetServer,
    current_version,
    has_artifacts,
    list_versions,
    load_artifacts,
    save_artifacts,
    set_current_version,
)
from repro.serving.artifacts import (
    ARRAYS_FILENAME,
    CURRENT_FILENAME,
    MANIFEST_FILENAME,
)
from repro.serving.results import OnlineLabel
from repro.signals.record import SignalRecord
from repro.simulate import (
    BuildingConfig,
    DriftScenarioConfig,
    generate_degrading_scenario,
    scramble_records,
)
from repro.simulate.collector import CollectionConfig
from repro.simulate.drift import SCRAMBLED_RECORD_PREFIX
from repro.telemetry.events import (
    EVENT_REFRESH_REJECTED,
    EVENT_ROLLBACK_DONE,
)

BUILDING = "degrade-test"

#: Seed where the scrambled wave's damage is unambiguous for this
#: configuration: the gated refresh collapses label stability to ~0.33 and
#: holdout accuracy to 0.0 (verified deterministic — fit and refresh are
#: seeded through the pipeline config).
DEGRADE_SEED = 6

#: How aggressively the candidate fine-tunes on the wave.  The warm-start
#: budget is deliberately conservative; the lifecycle tests crank it so the
#: poisoned material actually moves the encoder.
DEGRADE_EPOCHS = 30

LIFECYCLE_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=3,
    max_pairs_per_epoch=15_000,
    inference_passes=2,
    inference_sample_sizes=(30, 15),
    seed=0,
)


def degrade_building_config() -> BuildingConfig:
    return BuildingConfig(
        num_floors=3,
        aps_per_floor=8,
        width_m=60.0,
        depth_m=40.0,
        ap_tx_power_dbm=15.0,
        collection=CollectionConfig(
            samples_per_floor=15,
            scans_per_contributor=10,
            sensitivity_dbm=-90.0,
        ),
        building_id=BUILDING,
    )


@pytest.fixture(scope="module")
def degrade_world(tmp_path_factory):
    """A degrading scenario, a model fitted on its survey, and a template
    versioned store holding that model as generation v0.

    Tests copy the template store rather than re-fitting — the fit is the
    expensive part and every registry mutation must start from v0.
    """
    scenario = generate_degrading_scenario(
        DriftScenarioConfig(
            building=degrade_building_config(), post_samples_per_floor=30
        ),
        seed=DEGRADE_SEED,
    )
    initial = scenario.initial
    anchor = initial.pick_labeled_sample(floor=0)
    observed = initial.strip_labels(keep_record_ids=[anchor.record_id])
    fitted = FisOne(LIFECYCLE_CONFIG).fit(observed, anchor.record_id)
    template = tmp_path_factory.mktemp("lifecycle-template")
    save_artifacts(fitted, template / BUILDING, keep_generations=3)
    return SimpleNamespace(
        scenario=scenario,
        observed=observed,
        anchor=anchor,
        fitted=fitted,
        template=template,
    )


@pytest.fixture()
def probes(degrade_world):
    """Unlabeled records spanning every floor — the serving-identity witness.

    Drawn from the pre-drift survey, so the parent labels them confidently
    and a degraded candidate's re-shuffling is visible."""
    return [
        record.without_floor()
        for record in list(degrade_world.scenario.initial)[::4]
    ]


def make_registry(tmp_path, degrade_world, **kwargs):
    """A registry over a fresh copy of the template store (v0 retained)."""
    store = tmp_path / "store"
    shutil.copytree(degrade_world.template, store)
    kwargs.setdefault("keep_generations", 3)
    kwargs.setdefault(
        "refresh_policy", RefreshPolicy(fine_tune_epochs=DEGRADE_EPOCHS)
    )
    kwargs.setdefault("config", LIFECYCLE_CONFIG)
    return BuildingRegistry(store_dir=store, **kwargs)


def bump(fitted, version):
    """A cheap distinct generation: same model, bumped ``model_version``."""
    return dataclasses.replace(fitted, model_version=version)


def trip_drift(registry, building_id, n=60):
    """Deterministically trip a building's drift monitor with blind labels."""
    registry._monitor(building_id).observe(
        [
            OnlineLabel(
                record_id=f"blind-{i}",
                floor=0,
                confidence=0.0,
                known_mac_fraction=0.0,
            )
            for i in range(n)
        ]
    )


def event_kinds(registry):
    return [event.kind for event in registry.telemetry.events.snapshot()]


# ---------------------------------------------------------------------------
# Versioned artifact history
# ---------------------------------------------------------------------------


class TestArtifactHistory:
    def test_flat_save_stays_flat(self, degrade_world, tmp_path):
        target = tmp_path / "flat"
        save_artifacts(degrade_world.fitted, target)
        assert (target / MANIFEST_FILENAME).is_file()
        assert not (target / CURRENT_FILENAME).exists()
        assert list_versions(target) == []
        assert current_version(target) is None
        assert load_artifacts(target).model_version == 0

    def test_versioned_layout_and_current_pointer(self, degrade_world, tmp_path):
        target = tmp_path / "versioned"
        save_artifacts(degrade_world.fitted, target, keep_generations=3)
        assert (target / "v0" / MANIFEST_FILENAME).is_file()
        assert (target / "v0" / ARRAYS_FILENAME).is_file()
        assert (target / CURRENT_FILENAME).read_text().strip() == "v0"
        assert list_versions(target) == [0]
        assert current_version(target) == 0
        assert has_artifacts(target)
        assert load_artifacts(target).model_version == 0

    def test_versioned_store_stays_versioned_without_keep(
        self, degrade_world, tmp_path
    ):
        target = tmp_path / "sticky"
        save_artifacts(degrade_world.fitted, target, keep_generations=3)
        # A later save that omits keep_generations must not flatten the
        # store (that would orphan the history mid-flight).
        save_artifacts(bump(degrade_world.fitted, 1), target)
        assert list_versions(target) == [0, 1]
        assert current_version(target) == 1
        assert not (target / MANIFEST_FILENAME).exists()

    def test_flat_store_migrates_on_first_retention_save(
        self, degrade_world, tmp_path
    ):
        target = tmp_path / "migrate"
        save_artifacts(degrade_world.fitted, target)  # flat v0
        save_artifacts(bump(degrade_world.fitted, 1), target, keep_generations=3)
        assert list_versions(target) == [0, 1]
        assert current_version(target) == 1
        # The pre-upgrade generation stays loadable for rollback.
        assert load_artifacts(target, version=0).model_version == 0
        assert not (target / MANIFEST_FILENAME).exists()

    def test_load_specific_version(self, degrade_world, tmp_path):
        target = tmp_path / "pick"
        for version in (0, 1, 2):
            save_artifacts(
                bump(degrade_world.fitted, version), target, keep_generations=3
            )
        assert load_artifacts(target).model_version == 2
        assert load_artifacts(target, version=1).model_version == 1
        with pytest.raises(ArtifactError, match="not retained"):
            load_artifacts(target, version=9)

    def test_retention_prunes_beyond_keep(self, degrade_world, tmp_path):
        target = tmp_path / "prune"
        for version in range(4):
            save_artifacts(
                bump(degrade_world.fitted, version), target, keep_generations=2
            )
        assert list_versions(target) == [2, 3]
        assert current_version(target) == 3

    def test_prune_never_drops_current(self, degrade_world, tmp_path):
        target = tmp_path / "prune-current"
        for version in (0, 1):
            save_artifacts(
                bump(degrade_world.fitted, version), target, keep_generations=3
            )
        # Operator rolled back to v0, then a new save arrives with tight
        # retention: the generation CURRENT pointed at must survive.
        set_current_version(target, 0)
        save_artifacts(bump(degrade_world.fitted, 2), target, keep_generations=2)
        retained = list_versions(target)
        assert 2 in retained  # the just-written generation is CURRENT now
        assert len(retained) == 2

    def test_set_current_version_validates(self, degrade_world, tmp_path):
        target = tmp_path / "setcur"
        save_artifacts(degrade_world.fitted, target, keep_generations=3)
        with pytest.raises(ArtifactError, match="not retained"):
            set_current_version(target, 5)

    def test_partial_generation_is_invisible(self, degrade_world, tmp_path):
        """A writer that crashed after the arrays but before the manifest
        leaves CURRENT on the previous generation — which must keep loading
        as if the torn write never happened."""
        target = tmp_path / "torn-write"
        save_artifacts(degrade_world.fitted, target, keep_generations=3)
        partial = target / "v7"
        partial.mkdir()
        (partial / ARRAYS_FILENAME).write_bytes(b"torn")
        assert list_versions(target) == [0]
        assert current_version(target) == 0
        assert load_artifacts(target).model_version == 0

    def test_crash_before_current_swap_serves_previous(
        self, degrade_world, tmp_path
    ):
        """A fully written generation whose CURRENT swap never landed is
        retained but not served: the pointer still names the previous,
        consistent generation."""
        target = tmp_path / "torn-swap"
        save_artifacts(degrade_world.fitted, target, keep_generations=3)
        shutil.copytree(target / "v0", target / "v1")
        assert current_version(target) == 0
        assert load_artifacts(target).model_version == 0
        assert list_versions(target) == [0, 1]

    def test_corrupt_current_pointer_is_an_error(self, degrade_world, tmp_path):
        target = tmp_path / "corrupt"
        save_artifacts(degrade_world.fitted, target, keep_generations=3)
        (target / CURRENT_FILENAME).write_text("definitely-not-a-version\n")
        with pytest.raises(ArtifactError, match="corrupt"):
            load_artifacts(target)
        # The forgiving helpers degrade to "flat/unknown", not garbage.
        assert current_version(target) is None

    def test_keep_generations_validated(self, degrade_world, tmp_path):
        with pytest.raises(ValueError, match="keep_generations"):
            save_artifacts(
                degrade_world.fitted, tmp_path / "bad", keep_generations=0
            )
        with pytest.raises(ValueError, match="keep_generations"):
            BuildingRegistry(store_dir=tmp_path, keep_generations=0)


# ---------------------------------------------------------------------------
# The degrading scenario itself
# ---------------------------------------------------------------------------


class TestDegradingScenario:
    def test_scrambled_records_are_marked_and_in_vocabulary(self, degrade_world):
        wave = degrade_world.scenario.drifted_records
        scrambled = [
            record
            for record in wave
            if record.record_id.startswith(SCRAMBLED_RECORD_PREFIX)
        ]
        honest = [record for record in wave if record not in scrambled]
        assert scrambled and honest  # body scrambled, tail honest
        # Scrambling pools readings from the honest wave only — every MAC is
        # one the drifted building actually radiates (survivors of the churn
        # plus the replacement hardware), never an invented address.
        scenario = degrade_world.scenario
        pool = (
            {mac for record in scenario.initial for mac in record.readings}
            - scenario.replaced_macs
        ) | scenario.introduced_macs
        assert all(
            mac in pool for record in scrambled for mac in record.readings
        )

    def test_scramble_records_empty_and_deterministic(self, degrade_world):
        assert scramble_records([], seed=1) == []
        wave = degrade_world.scenario.drifted_records[:5]
        again = scramble_records(wave, seed=3)
        assert again == scramble_records(wave, seed=3)

    def test_gated_refresh_on_wave_is_rejected_by_canary(self, degrade_world):
        """The scenario's contract: training on the wave with the holdout
        withheld produces a candidate the default canary turns away."""
        fitted = degrade_world.fitted
        wave = degrade_world.scenario.drifted_records
        policy = CanaryPolicy()
        holdout_size = policy.holdout_size(len(wave))
        assert holdout_size >= policy.min_holdout
        train = wave[:-holdout_size]
        holdout = wave[-holdout_size:]
        result = fitted.refresh(train, fine_tune_epochs=DEGRADE_EPOCHS)
        score = score_refresh_canary(
            fitted, result.fitted, holdout, result.report.label_stability
        )
        reasons = policy.judge(score)
        assert reasons, f"canary passed a degraded candidate: {score}"
        assert score.candidate_accuracy < score.parent_accuracy


# ---------------------------------------------------------------------------
# Canary validation in the registry
# ---------------------------------------------------------------------------


class TestCanaryGate:
    def test_rejected_refresh_leaves_serving_untouched(
        self, degrade_world, probes, tmp_path
    ):
        registry = make_registry(tmp_path, degrade_world)
        wave = degrade_world.scenario.drifted_records

        serving_before = registry.get(BUILDING)
        floors_before, conf_before, _ = serving_before.online_floors(probes)
        registry.label(BUILDING, probes)  # prime monitor + buffer
        window_before = registry.drift_snapshot(BUILDING).num_records
        buffered_before = registry.buffered_record_count(BUILDING)
        manifest_before = (
            registry.store_dir / BUILDING / "v0" / MANIFEST_FILENAME
        ).read_bytes()

        with pytest.raises(RefreshRejectedError) as excinfo:
            registry.refresh(BUILDING, records=wave)
        assert excinfo.value.building_id == BUILDING
        assert excinfo.value.reasons
        assert isinstance(excinfo.value.score, CanaryScore)

        # Serving identity: same cached object, bit-identical labels.
        assert registry.get(BUILDING) is serving_before
        floors_after, conf_after, _ = registry.get(BUILDING).online_floors(probes)
        assert np.array_equal(floors_before, floors_after)
        assert np.array_equal(conf_before, conf_after)
        # Store untouched: pointer, history, and manifest bytes unchanged.
        assert current_version(registry.store_dir / BUILDING) == 0
        assert list_versions(registry.store_dir / BUILDING) == [0]
        assert (
            registry.store_dir / BUILDING / "v0" / MANIFEST_FILENAME
        ).read_bytes() == manifest_before
        # Monitor and buffer untouched: the rejected attempt consumed nothing.
        assert registry.drift_snapshot(BUILDING).num_records == window_before
        assert registry.buffered_record_count(BUILDING) == buffered_before
        # Accounting: a rejection, no refresh, and the event on the stream.
        stats = registry.stats
        assert stats.rejected_refreshes == 1
        assert stats.refreshes == 0
        assert EVENT_REFRESH_REJECTED in event_kinds(registry)

    def test_refresh_if_drifted_swallows_rejection(
        self, degrade_world, tmp_path
    ):
        registry = make_registry(
            tmp_path,
            degrade_world,
            refresh_policy=RefreshPolicy(
                fine_tune_epochs=DEGRADE_EPOCHS, min_new_records=16
            ),
        )
        wave = degrade_world.scenario.drifted_records
        registry.label(BUILDING, [record.without_floor() for record in wave])
        assert registry.buffered_record_count(BUILDING) >= len(wave)
        trip_drift(registry, BUILDING)
        assert registry.drift_snapshot(BUILDING).drifted

        assert registry.refresh_if_drifted(BUILDING) is None
        assert registry.stats.rejected_refreshes == 1
        assert current_version(registry.store_dir / BUILDING) == 0

    def test_small_waves_bypass_the_holdout(self, degrade_world, tmp_path):
        """Below ``min_holdout`` there is no validation window: the refresh
        trains on everything, exactly the pre-canary accounting."""
        # The stability gate still applies without a holdout; loosen it so
        # this test observes the *accounting*, not the verdict.
        registry = make_registry(
            tmp_path,
            degrade_world,
            refresh_policy=RefreshPolicy(
                canary=CanaryPolicy(min_label_stability=0.0)
            ),
        )
        small_wave = degrade_world.scenario.drifted_records[-12:]
        assert CanaryPolicy().holdout_size(len(small_wave)) == 0
        report = registry.refresh(BUILDING, records=small_wave)
        assert report.num_new_records == len(small_wave)
        assert registry.stats.refreshes == 1

    def test_canary_policy_validation(self):
        with pytest.raises(ValueError):
            CanaryPolicy(holdout_fraction=1.5)
        with pytest.raises(ValueError):
            CanaryPolicy(min_holdout=0)
        with pytest.raises(ValueError):
            CanaryPolicy(min_label_stability=-0.1)
        policy = CanaryPolicy(holdout_fraction=0.25, max_holdout=4, min_holdout=2)
        assert policy.holdout_size(100) == 4
        assert policy.holdout_size(4) == 0  # below min_holdout


# ---------------------------------------------------------------------------
# Forced refresh + rollback
# ---------------------------------------------------------------------------


class TestRollback:
    def test_forced_bad_refresh_then_rollback_restores_labels(
        self, degrade_world, probes, tmp_path
    ):
        registry = make_registry(tmp_path, degrade_world)
        wave = degrade_world.scenario.drifted_records
        floors_before, conf_before, _ = registry.get(BUILDING).online_floors(
            probes
        )

        report = registry.refresh(BUILDING, records=wave, force=True)
        assert report is not None
        directory = registry.store_dir / BUILDING
        assert current_version(directory) == 1
        assert list_versions(directory) == [0, 1]
        floors_degraded, _, _ = registry.get(BUILDING).online_floors(probes)
        assert not np.array_equal(floors_before, floors_degraded)

        restored = registry.rollback(BUILDING)
        assert restored.model_version == 0
        assert current_version(directory) == 0
        # Rollback is non-destructive: the bad generation stays inspectable.
        assert list_versions(directory) == [0, 1]
        floors_after, conf_after, _ = registry.get(BUILDING).online_floors(
            probes
        )
        assert np.array_equal(floors_before, floors_after)
        assert np.array_equal(conf_before, conf_after)
        stats = registry.stats
        assert stats.refreshes == 1
        assert stats.rollbacks == 1
        assert EVENT_ROLLBACK_DONE in event_kinds(registry)

    def test_rollback_to_explicit_version_pins_forward_too(
        self, degrade_world, tmp_path
    ):
        registry = make_registry(tmp_path, degrade_world)
        directory = registry.store_dir / BUILDING
        registry.refresh(
            BUILDING,
            records=degrade_world.scenario.drifted_records[-12:],
            force=True,
        )
        assert current_version(directory) == 1
        registry.rollback(BUILDING, to_version=0)
        assert current_version(directory) == 0
        # An operator who inspected and trusts the refresh can pin forward.
        pinned = registry.rollback(BUILDING, to_version=1)
        assert pinned.model_version == 1
        assert current_version(directory) == 1

    def test_rollback_validation_errors(self, degrade_world, tmp_path):
        registry = make_registry(tmp_path, degrade_world)
        # Only one generation: nothing precedes it.
        with pytest.raises(ValueError, match="precedes"):
            registry.rollback(BUILDING)
        with pytest.raises(ArtifactError, match="not retained"):
            registry.rollback(BUILDING, to_version=42)
        # Store-less registry.
        storeless = BuildingRegistry(config=LIFECYCLE_CONFIG)
        storeless.register(BUILDING, degrade_world.scenario.initial)
        with pytest.raises(ValueError, match="store_dir"):
            storeless.rollback(BUILDING)
        # Flat store: history was never retained.
        flat_dir = tmp_path / "flat-store"
        save_artifacts(degrade_world.fitted, flat_dir / BUILDING)
        flat = BuildingRegistry(store_dir=flat_dir, config=LIFECYCLE_CONFIG)
        with pytest.raises(ValueError, match="no retained generations"):
            flat.rollback(BUILDING)

    def test_retained_versions_helper(self, degrade_world, tmp_path):
        registry = make_registry(tmp_path, degrade_world)
        assert registry.retained_versions(BUILDING) == [0]
        storeless = BuildingRegistry(config=LIFECYCLE_CONFIG)
        storeless.register(BUILDING, degrade_world.scenario.initial)
        assert storeless.retained_versions(BUILDING) == []

    def test_rollback_if_drifted(self, degrade_world, tmp_path):
        registry = make_registry(tmp_path, degrade_world)
        registry.refresh(
            BUILDING,
            records=degrade_world.scenario.drifted_records[-12:],
            force=True,
        )
        # Healthy monitor: no rollback.
        assert registry.rollback_if_drifted(BUILDING) is None
        trip_drift(registry, BUILDING)
        assert registry.rollback_if_drifted(BUILDING) == 0
        assert current_version(registry.store_dir / BUILDING) == 0
        # Nothing left to roll back to: drifted again is a no-op.
        trip_drift(registry, BUILDING)
        assert registry.rollback_if_drifted(BUILDING) is None


# ---------------------------------------------------------------------------
# The supersede race: register() landing mid-refresh
# ---------------------------------------------------------------------------


class TestSupersedeRace:
    def _race(self, registry, degrade_world, monkeypatch):
        """Arrange a register() that lands inside the refresh's save window."""
        import repro.serving.registry as registry_module

        real_save = registry_module.save_artifacts
        fired = []

        def racing_save(*args, **kwargs):
            result = real_save(*args, **kwargs)
            if not fired:
                fired.append(True)
                registry.register(BUILDING, degrade_world.scenario.initial)
            return result

        monkeypatch.setattr(registry_module, "save_artifacts", racing_save)
        return fired

    def test_superseded_refresh_save_is_undone_versioned(
        self, degrade_world, tmp_path, monkeypatch
    ):
        registry = make_registry(tmp_path, degrade_world)
        self._race(registry, degrade_world, monkeypatch)
        registry.refresh(
            BUILDING,
            records=degrade_world.scenario.drifted_records[-12:],
            force=True,
        )
        directory = registry.store_dir / BUILDING
        # The store must not claim the superseded candidate: CURRENT is back
        # on the parent and the candidate's generation is gone.
        assert current_version(directory) == 0
        assert list_versions(directory) == [0]
        manifest = json.loads(
            (directory / "v0" / MANIFEST_FILENAME).read_text()
        )
        assert manifest["model_version"] == 0
        assert manifest["lineage"] == []

    def test_superseded_refresh_save_is_undone_flat(
        self, degrade_world, tmp_path, monkeypatch
    ):
        flat_dir = tmp_path / "flat-store"
        save_artifacts(degrade_world.fitted, flat_dir / BUILDING)
        registry = BuildingRegistry(
            store_dir=flat_dir,
            config=LIFECYCLE_CONFIG,
            refresh_policy=RefreshPolicy(),
        )
        self._race(registry, degrade_world, monkeypatch)
        registry.refresh(
            BUILDING,
            records=degrade_world.scenario.drifted_records[-12:],
            force=True,
        )
        # Flat mode cannot restore the overwritten parent; the poisoned
        # write is deleted and the registered data refits on next demand.
        assert not has_artifacts(flat_dir / BUILDING)


# ---------------------------------------------------------------------------
# Background refresh scheduler
# ---------------------------------------------------------------------------


class _FakeRegistry:
    """Duck-typed registry driving the scheduler's decision paths."""

    def __init__(self, buildings, drifted=(), buffered=100, outcome="report"):
        self.refresh_policy = RefreshPolicy(min_new_records=5)
        self._buildings = list(buildings)
        self._drifted = set(drifted)
        self._buffered = buffered
        self._outcome = outcome
        self.refresh_calls = []

    @property
    def building_ids(self):
        return list(self._buildings)

    def drift_snapshot(self, building_id):
        return SimpleNamespace(drifted=building_id in self._drifted)

    def buffered_record_count(self, building_id):
        return self._buffered

    def refresh_if_drifted(self, building_id):
        self.refresh_calls.append(building_id)
        if self._outcome == "report":
            return SimpleNamespace(num_new_records=self._buffered)
        if self._outcome == "rejected":
            return None
        if self._outcome == "unavailable":
            raise RefreshUnavailableError("no graph")
        raise KeyError(building_id)


class TestRefreshScheduler:
    def test_sweep_refreshes_only_drifted_buildings(self):
        registry = _FakeRegistry(["a", "b", "c"], drifted={"b"})
        scheduler = RefreshScheduler(registry, cooldown_s=0.0)
        assert scheduler.sweep_once() == 1
        assert registry.refresh_calls == ["b"]
        stats = scheduler.stats
        assert stats.sweeps == 1
        assert stats.attempts == 1
        assert stats.refreshes == 1

    def test_insufficient_material_is_not_an_attempt(self):
        registry = _FakeRegistry(["a"], drifted={"a"}, buffered=2)
        scheduler = RefreshScheduler(registry, cooldown_s=0.0)
        assert scheduler.sweep_once() == 0
        assert registry.refresh_calls == []
        assert scheduler.stats.attempts == 0

    def test_cooldown_after_rejection_prevents_retrain_loop(self):
        registry = _FakeRegistry(["a"], drifted={"a"}, outcome="rejected")
        scheduler = RefreshScheduler(registry, cooldown_s=3600.0)
        scheduler.sweep_once()
        scheduler.sweep_once()
        # One attempt, one rejection — the second sweep honoured the cooldown.
        assert registry.refresh_calls == ["a"]
        stats = scheduler.stats
        assert stats.sweeps == 2
        assert stats.attempts == 1
        assert stats.rejections == 1

    def test_zero_cooldown_retries_every_sweep(self):
        registry = _FakeRegistry(["a"], drifted={"a"}, outcome="rejected")
        scheduler = RefreshScheduler(registry, cooldown_s=0.0)
        scheduler.sweep_once()
        scheduler.sweep_once()
        assert registry.refresh_calls == ["a", "a"]

    def test_unavailable_and_vanished_buildings_are_skipped(self):
        registry = _FakeRegistry(["a"], drifted={"a"}, outcome="unavailable")
        scheduler = RefreshScheduler(registry, cooldown_s=0.0)
        assert scheduler.sweep_once() == 0
        assert scheduler.stats.unavailable == 1
        vanished = _FakeRegistry(["a"], drifted={"a"}, outcome="vanished")
        scheduler = RefreshScheduler(vanished, cooldown_s=0.0)
        assert scheduler.sweep_once() == 0  # KeyError swallowed

    def test_fixed_building_set_overrides_registry_listing(self):
        registry = _FakeRegistry(["a", "b"], drifted={"a", "b"})
        scheduler = RefreshScheduler(registry, building_ids=["a"], cooldown_s=0.0)
        scheduler.sweep_once()
        assert registry.refresh_calls == ["a"]

    def test_jitter_bounds_and_validation(self):
        registry = _FakeRegistry([])
        scheduler = RefreshScheduler(
            registry, interval_s=10.0, jitter_fraction=0.2, seed=5
        )
        for _ in range(50):
            assert 8.0 <= scheduler._next_delay() <= 12.0
        with pytest.raises(ValueError):
            RefreshScheduler(registry, interval_s=0.0)
        with pytest.raises(ValueError):
            RefreshScheduler(registry, jitter_fraction=1.0)
        with pytest.raises(ValueError):
            RefreshScheduler(registry, cooldown_s=-1.0)

    def test_daemon_thread_sweeps_and_stops(self):
        registry = _FakeRegistry(["a"], drifted={"a"})
        done = threading.Event()
        original = registry.refresh_if_drifted

        def notify(building_id):
            result = original(building_id)
            done.set()
            return result

        registry.refresh_if_drifted = notify
        with RefreshScheduler(registry, interval_s=0.01, cooldown_s=0.0) as sched:
            assert sched.is_running
            assert done.wait(timeout=10.0)
        assert not sched.is_running
        assert sched.stats.refreshes >= 1

    def test_sweep_against_real_registry(self, degrade_world, tmp_path):
        """End to end: drifted building + buffered material → a real refresh
        lands through the scheduler and bumps the stored generation."""
        registry = make_registry(
            tmp_path,
            degrade_world,
            refresh_policy=RefreshPolicy(min_new_records=8, canary=None),
        )
        wave = degrade_world.scenario.drifted_records[-12:]
        registry.label(BUILDING, [record.without_floor() for record in wave])
        trip_drift(registry, BUILDING)
        scheduler = RefreshScheduler(registry, cooldown_s=0.0)
        assert scheduler.sweep_once() == 1
        assert current_version(registry.store_dir / BUILDING) == 1


# ---------------------------------------------------------------------------
# Fleet-wide rollback
# ---------------------------------------------------------------------------


def seed_two_generation_store(degrade_world, tmp_path, buildings):
    """A store where each building retains v0 and serves v1."""
    store = tmp_path / "fleet-store"
    for building_id in buildings:
        directory = store / building_id
        fitted = dataclasses.replace(degrade_world.fitted, building_id=building_id)
        save_artifacts(fitted, directory, keep_generations=3)
        save_artifacts(bump(fitted, 1), directory, keep_generations=3)
        assert current_version(directory) == 1
    return store


class TestFleetRollback:
    def test_fleet_server_rolls_back_only_drifted(self, degrade_world, tmp_path):
        store = seed_two_generation_store(
            degrade_world, tmp_path, ["bldg-a", "bldg-b"]
        )
        registry = BuildingRegistry(
            store_dir=store, config=LIFECYCLE_CONFIG, keep_generations=3
        )
        with FleetServer(registry) as server:
            trip_drift(registry, "bldg-a")
            restored = server.rollback_drifted()
        assert restored == {"bldg-a": 0}
        assert current_version(store / "bldg-a") == 0
        assert current_version(store / "bldg-b") == 1

    def test_sharded_fleet_routes_rollback_by_ring(self, degrade_world, tmp_path):
        buildings = ["bldg-a", "bldg-b", "bldg-c"]
        store = seed_two_generation_store(degrade_world, tmp_path, buildings)
        blind = [
            SignalRecord(
                record_id=f"blind-{i}",
                readings={f"02:00:00:00:00:{i:02x}": -60.0},
            )
            for i in range(20)
        ]
        policy = RefreshPolicy(
            thresholds=DriftThresholds(
                min_records=10, max_blind_fraction=0.5, min_mean_confidence=0.5
            )
        )
        server = ShardedFleetServer(
            store,
            num_workers=2,
            config=LIFECYCLE_CONFIG,
            refresh_policy=policy,
            keep_generations=3,
        )
        with server:
            # Drift two buildings; the third stays healthy.
            for building_id in buildings[:2]:
                server.submit(building_id, blind).result()
            restored = server.rollback_drifted()
        assert restored == {"bldg-a": 0, "bldg-b": 0}
        assert current_version(store / "bldg-a") == 0
        assert current_version(store / "bldg-b") == 0
        assert current_version(store / "bldg-c") == 1


# ---------------------------------------------------------------------------
# Concurrency: labels, refresh, rollback in flight together
# ---------------------------------------------------------------------------


class TestConcurrentLifecycle:
    def test_labels_survive_refresh_and_rollback(
        self, degrade_world, probes, tmp_path
    ):
        registry = make_registry(
            tmp_path,
            degrade_world,
            refresh_policy=RefreshPolicy(),  # default short fine-tune
        )
        floors_before, conf_before, _ = registry.get(BUILDING).online_floors(
            probes
        )
        stop = threading.Event()
        errors = []

        def serve_loop():
            while not stop.is_set():
                try:
                    labels = registry.label(BUILDING, probes)
                    assert len(labels) == len(probes)
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)
                    return

        threads = [threading.Thread(target=serve_loop) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(2):
                registry.refresh(
                    BUILDING,
                    records=degrade_world.scenario.drifted_records,
                    force=True,
                )
                registry.rollback(BUILDING, to_version=0)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not errors
        floors_after, conf_after, _ = registry.get(BUILDING).online_floors(
            probes
        )
        assert np.array_equal(floors_before, floors_after)
        assert np.array_equal(conf_before, conf_after)
        stats = registry.stats
        assert stats.refreshes == 2
        assert stats.rollbacks == 2
