"""Equivalence tests for the frozen CSR graph core vs the mutable builder.

The refactor's contract: ``CSRGraph.from_dataset`` (vectorised),
``BipartiteGraph.from_dataset(...).freeze()`` (builder then freeze), and the
builder's own adjacency must describe the *same* graph — node ids, neighbour
order, weights, degrees — on arbitrary datasets, including duplicate-MAC and
single-reading edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.alias import (
    AliasTables,
    _ROW_SUM_MATCH_BY_DEGREE,
    _row_sums_match_slice_sums,
    _segment_totals,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.csr import CSRGraph, MAC_KIND, SAMPLE_KIND
from repro.signals.dataset import SignalDataset
from repro.signals.record import SignalRecord

#: Small MAC alphabet so random datasets share MACs across records often.
MAC_POOL = [f"mac-{i:02d}" for i in range(12)]


@st.composite
def random_datasets(draw):
    """Random small datasets with shared MACs and single-reading records."""
    num_records = draw(st.integers(min_value=1, max_value=10))
    records = []
    for index in range(num_records):
        num_readings = draw(st.integers(min_value=1, max_value=6))
        macs = draw(
            st.lists(
                st.sampled_from(MAC_POOL),
                min_size=num_readings,
                max_size=num_readings,
                unique=True,
            )
        )
        readings = {
            mac: draw(st.floats(min_value=-119.0, max_value=-1.0)) for mac in macs
        }
        records.append(SignalRecord(f"r{index}", readings))
    return SignalDataset(records, building_id="prop")


def assert_graphs_equal(frozen: CSRGraph, builder: BipartiteGraph) -> None:
    """The frozen CSR view must agree with the builder adjacency exactly."""
    assert frozen.num_nodes == builder.num_nodes
    assert frozen.num_edges == builder.num_edges
    assert np.array_equal(frozen.degrees(), builder.degrees())
    assert np.array_equal(frozen.mac_ids, builder.mac_ids)
    assert np.array_equal(frozen.sample_ids, builder.sample_ids)
    for node_id in range(builder.num_nodes):
        node = builder.node(node_id)
        assert frozen.node(node_id) == node
        assert frozen.node_id(node.kind, node.key) == node_id
        assert frozen.neighbors(node_id) == builder.neighbors(node_id)
        assert frozen.neighbor_weights(node_id) == builder.neighbor_weights(node_id)
        csr_neighbors, csr_weights = frozen.neighbor_arrays(node_id)
        builder_neighbors, builder_weights = builder.neighbor_arrays(node_id)
        assert np.array_equal(csr_neighbors, builder_neighbors)
        assert np.array_equal(csr_weights, builder_weights)


class TestEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(dataset=random_datasets())
    def test_frozen_view_agrees_with_builder(self, dataset):
        builder = BipartiteGraph.from_dataset(dataset)
        assert_graphs_equal(builder.freeze(), builder)

    @settings(max_examples=50, deadline=None)
    @given(dataset=random_datasets())
    def test_vectorized_build_equals_builder_freeze(self, dataset):
        frozen = BipartiteGraph.from_dataset(dataset).freeze()
        vectorized = CSRGraph.from_dataset(dataset)
        assert np.array_equal(vectorized.indptr, frozen.indptr)
        assert np.array_equal(vectorized.indices, frozen.indices)
        assert np.array_equal(vectorized.weights, frozen.weights)
        assert np.array_equal(vectorized.kinds, frozen.kinds)
        assert list(vectorized.keys) == list(frozen.keys)

    def test_single_reading_dataset(self):
        dataset = SignalDataset([SignalRecord("only", {"aa": -50.0})])
        frozen = CSRGraph.from_dataset(dataset)
        assert frozen.num_nodes == 2
        assert frozen.num_edges == 1
        assert frozen.neighbors(frozen.sample_node_id("only")) == [
            frozen.mac_node_id("aa")
        ]
        assert_graphs_equal(frozen, BipartiteGraph.from_dataset(dataset))

    def test_duplicate_mac_across_records(self):
        dataset = SignalDataset(
            [
                SignalRecord("r0", {"aa": -40.0}),
                SignalRecord("r1", {"aa": -60.0, "bb": -70.0}),
                SignalRecord("r2", {"bb": -45.0, "aa": -55.0}),
            ]
        )
        frozen = CSRGraph.from_dataset(dataset)
        mac = frozen.mac_node_id("aa")
        # One edge per observing record, in record order.
        assert frozen.neighbors(mac) == [
            frozen.sample_node_id("r0"),
            frozen.sample_node_id("r1"),
            frozen.sample_node_id("r2"),
        ]
        assert frozen.neighbor_weights(mac) == [80.0, 60.0, 65.0]
        assert_graphs_equal(frozen, BipartiteGraph.from_dataset(dataset))

    def test_non_positive_weight_rejected(self):
        dataset = SignalDataset([SignalRecord("r0", {"aa": -120.0})])
        with pytest.raises(ValueError, match="not positive"):
            CSRGraph.from_dataset(dataset)


class TestFreezeLifecycle:
    def test_freeze_is_cached_until_mutation(self, tiny_dataset):
        builder = BipartiteGraph.from_dataset(tiny_dataset)
        first = builder.freeze()
        assert builder.freeze() is first
        builder.add_record(SignalRecord("new", {"aa": -60.0, "zz": -70.0}))
        second = builder.freeze()
        assert second is not first
        assert second.num_nodes == first.num_nodes + 2
        assert_graphs_equal(second, builder)

    def test_frozen_graph_freeze_is_identity(self, tiny_dataset):
        frozen = CSRGraph.from_dataset(tiny_dataset)
        assert frozen.freeze() is frozen

    def test_thaw_round_trip(self, tiny_dataset):
        frozen = CSRGraph.from_dataset(tiny_dataset)
        builder = frozen.thaw()
        assert_graphs_equal(frozen, builder)
        # Thawed builders support dynamic growth and re-freeze cleanly.
        builder.add_record(SignalRecord("online", {"aa": -58.0, "new-ap": -72.0}))
        regrown = builder.freeze()
        assert regrown.sample_node_id("online") == frozen.num_nodes
        assert regrown.num_edges == frozen.num_edges + 2
        assert_graphs_equal(regrown, builder)

    def test_cached_id_arrays(self, tiny_dataset):
        builder = BipartiteGraph.from_dataset(tiny_dataset)
        assert builder.sample_ids is builder.sample_ids  # cached, not rebuilt
        frozen = builder.freeze()
        assert frozen.sample_ids.dtype == np.int64
        assert frozen.mac_ids.dtype == np.int64
        assert np.array_equal(
            np.sort(np.concatenate([frozen.mac_ids, frozen.sample_ids])),
            np.arange(frozen.num_nodes),
        )
        assert np.all(frozen.kinds[frozen.mac_ids] == MAC_KIND)
        assert np.all(frozen.kinds[frozen.sample_ids] == SAMPLE_KIND)


class TestSharedAliasTables:
    def test_tables_built_once_per_graph(self, tiny_dataset):
        frozen = CSRGraph.from_dataset(tiny_dataset)
        weighted = frozen.alias_tables(uniform=False)
        assert frozen.alias_tables(uniform=False) is weighted
        uniform = frozen.alias_tables(uniform=True)
        assert uniform is not weighted
        assert frozen.alias_tables(uniform=True) is uniform

    def test_tables_match_per_node_construction(self, tiny_dataset):
        builder = BipartiteGraph.from_dataset(tiny_dataset)
        frozen = builder.freeze()
        shared = frozen.alias_tables(uniform=False)
        legacy = AliasTables.from_neighbor_lists(
            [builder.neighbor_arrays(i)[0] for i in range(builder.num_nodes)],
            [builder.neighbor_arrays(i)[1] for i in range(builder.num_nodes)],
            uniform=False,
        )
        assert np.array_equal(shared.degrees, legacy.degrees)
        assert np.array_equal(shared.neighbors, legacy.neighbors)
        assert np.array_equal(shared.weights, legacy.weights)
        assert np.array_equal(shared.prob, legacy.prob)
        assert np.array_equal(shared.alias, legacy.alias)

    def test_zero_degree_node_rejected(self):
        with pytest.raises(ValueError, match="no neighbours"):
            AliasTables.from_csr(
                np.array([0, 1, 1]), np.array([1]), np.array([2.0]), uniform=False
            )


class TestVectorizedMatrixViews:
    def test_adjacency_matrix_matches_explicit_loop(self, tiny_dataset):
        frozen = CSRGraph.from_dataset(tiny_dataset)
        expected = np.zeros((frozen.num_nodes, frozen.num_nodes))
        for node_id in range(frozen.num_nodes):
            for neighbor, weight in zip(
                frozen.neighbors(node_id), frozen.neighbor_weights(node_id)
            ):
                expected[node_id, neighbor] = weight
        assert np.array_equal(frozen.adjacency_matrix(), expected)

    def test_sample_feature_matrix_matches_explicit_loop(self, tiny_dataset):
        frozen = CSRGraph.from_dataset(tiny_dataset)
        features = frozen.sample_feature_matrix(tiny_dataset)
        mac_column = {str(frozen.keys[mac]): col for col, mac in enumerate(frozen.mac_ids)}
        expected = np.full((len(tiny_dataset), len(mac_column)), -120.0)
        for row, record in enumerate(tiny_dataset):
            for mac, rss in record.readings.items():
                expected[row, mac_column[mac]] = rss
        # With the dataset given, the raw readings are scattered bit-exactly.
        assert np.array_equal(features, expected)
        assert features.shape == (len(tiny_dataset), len(tiny_dataset.macs))
        # Without it, the RSS is recovered from the edge weights (ulp-close).
        assert np.allclose(frozen.sample_feature_matrix(), expected)

    def test_sample_feature_matrix_rejects_mismatched_dataset(self, tiny_dataset):
        frozen = CSRGraph.from_dataset(tiny_dataset)
        smaller = tiny_dataset.subset(lambda record: record.record_id != "r0")
        with pytest.raises(ValueError, match="sample nodes"):
            frozen.sample_feature_matrix(smaller)


class TestSegmentTotals:
    """The vectorised per-node totals behind AliasTables.from_csr."""

    @staticmethod
    def _random_csr(seed, num_nodes=500, max_degree=30):
        rng = np.random.default_rng(seed)
        degrees = rng.integers(1, max_degree + 1, num_nodes)
        indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
        weights = (rng.random(indptr[-1]) + 1e-3).astype(np.float64)
        return indptr, np.diff(indptr), weights

    def test_bit_identical_to_scalar_slice_sums(self):
        for seed in range(5):
            indptr, degrees, weights = self._random_csr(seed)
            expected = np.array(
                [
                    weights[indptr[node] : indptr[node + 1]].sum()
                    for node in range(degrees.shape[0])
                ]
            )
            assert np.array_equal(_segment_totals(weights, indptr, degrees), expected)

    def test_scalar_fallback_stays_bit_identical(self, monkeypatch):
        # Force the probe verdict to "regrouped" for every degree: the
        # fallback path must still reproduce the slice sums exactly.
        monkeypatch.setattr(
            "repro.graph.alias._row_sums_match_slice_sums", lambda degree: False
        )
        indptr, degrees, weights = self._random_csr(7)
        expected = np.array(
            [
                weights[indptr[node] : indptr[node + 1]].sum()
                for node in range(degrees.shape[0])
            ]
        )
        assert np.array_equal(_segment_totals(weights, indptr, degrees), expected)

    def test_from_csr_reports_first_nonpositive_node(self):
        indptr = np.array([0, 2, 4, 6], dtype=np.int64)
        indices = np.array([1, 2, 0, 2, 0, 1], dtype=np.int64)
        weights = np.array([1.0, 1.0, 0.0, 0.0, -1.0, 1.0])
        with pytest.raises(ValueError, match="node 1"):
            AliasTables.from_csr(indptr, indices, weights)

    def test_probe_cache_is_populated(self):
        _ROW_SUM_MATCH_BY_DEGREE.clear()
        indptr, degrees, weights = self._random_csr(11, num_nodes=50, max_degree=9)
        _segment_totals(weights, indptr, degrees)
        probed = set(_ROW_SUM_MATCH_BY_DEGREE)
        assert probed == {int(d) for d in np.unique(degrees) if d > 1}
