"""Stress regression: stats and drift counters under concurrent submit/refresh.

Many threads push label traffic through one :class:`FleetServer` while a
refresher thread sweeps ``refresh_drifted()`` (with thresholds tuned so
refreshes actually fire) and a prober thread hammers ``stats()``.  The
assertions pin the invariants that torn reads or lost updates would break:

* every snapshot ``stats()`` returns is internally consistent (finite
  throughput, non-negative counters) and *monotonic* across snapshots —
  counters and the elapsed clock never run backwards while serving;
* after the storm, the server counted exactly the submitted traffic (no
  lost updates under the stats lock);
* the building's :class:`DriftMonitor` observed exactly one label per
  record (``num_observed`` survives the window resets refreshes trigger);
* the registry's cold fit happened exactly once (single-flight) and every
  registry snapshot stays consistent while refreshes bump generations.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    BuildingRegistry,
    DriftThresholds,
    FleetServer,
    RefreshPolicy,
)
from repro.signals.record import SignalRecord
from repro.simulate import generate_single_building

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)

NUM_THREADS = 6
BATCHES_PER_THREAD = 12
RECORDS_PER_BATCH = 8


def test_stats_and_monitor_survive_concurrent_submit_and_refresh(tmp_path):
    labeled = generate_single_building(num_floors=3, samples_per_floor=25, seed=17)
    train, stream = labeled.holdout_split(train_per_floor=18)
    anchor = train.pick_labeled_sample(floor=0)
    observed = train.strip_labels(keep_record_ids=[anchor.record_id])

    policy = RefreshPolicy(
        thresholds=DriftThresholds(min_records=16, max_unknown_mac_fraction=0.05),
        min_new_records=8,
        fine_tune_epochs=1,
    )
    registry = BuildingRegistry(
        store_dir=tmp_path / "store", config=FAST_CONFIG, refresh_policy=policy
    )
    registry.register("stress", observed, anchor_record_id=anchor.record_id)

    base = [record.without_floor() for record in stream]
    # Every record carries alien MACs, so the unknown fraction stays over
    # the threshold and the refresher genuinely refreshes mid-traffic.
    def make_batch(thread: int, batch: int):
        return [
            SignalRecord(
                f"t{thread}-b{batch}-r{i}",
                {
                    **base[(thread + batch + i) % len(base)].readings,
                    f"alien:{thread}:{batch}:0": -55.0,
                    f"alien:{thread}:{batch}:1": -60.0,
                    f"alien:{thread}:{batch}:2": -65.0,
                },
            )
            for i in range(RECORDS_PER_BATCH)
        ]

    errors = []
    stop_probing = threading.Event()

    with FleetServer(registry, num_workers=4, batch_window_s=0.001) as server:
        snapshots = []

        def probe():
            previous = None
            while not stop_probing.is_set():
                stats = server.stats()
                registry_stats = registry.stats
                try:
                    assert stats.num_records >= 0
                    assert np.isfinite(stats.records_per_second)
                    assert stats.records_per_second >= 0.0
                    if previous is not None:
                        assert stats.num_records >= previous.num_records
                        assert stats.num_requests >= previous.num_requests
                        assert stats.num_batches >= previous.num_batches
                        assert stats.elapsed_s >= previous.elapsed_s
                    assert registry_stats.fits <= 1
                    assert registry_stats.misses <= 1
                except AssertionError as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return
                previous = stats
                snapshots.append(stats)

        def refresher():
            # Sweep for as long as the labelers are running, so refreshes
            # genuinely interleave with the traffic instead of finishing
            # before the first batch lands.
            while not stop_probing.is_set():
                try:
                    server.refresh_drifted(["stress"])
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return
                stop_probing.wait(0.02)

        def labeler(thread: int):
            for batch in range(BATCHES_PER_THREAD):
                records = make_batch(thread, batch)
                try:
                    response = server.submit("stress", records).result(timeout=240)
                    assert len(response.labels) == len(records)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return

        threads = [
            threading.Thread(target=labeler, args=(index,))
            for index in range(NUM_THREADS)
        ]
        prober = threading.Thread(target=probe)
        sweeper = threading.Thread(target=refresher)
        prober.start()
        sweeper.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_probing.set()
        sweeper.join()
        prober.join()

        assert not errors, f"concurrent serving raised/violated: {errors[:3]}"
        assert snapshots, "the stats prober never ran"

        final = server.stats()

    total_records = NUM_THREADS * BATCHES_PER_THREAD * RECORDS_PER_BATCH
    total_requests = NUM_THREADS * BATCHES_PER_THREAD
    # No lost updates: the counters account for exactly the submitted traffic.
    assert final.num_records == total_records
    assert final.num_requests == total_requests
    assert 1 <= final.num_batches <= total_requests

    # The monitor saw one label per record; refresh-triggered window resets
    # must not eat observations (num_observed is reset-proof by contract).
    monitor = registry._monitor("stress")
    assert monitor.num_observed == total_records
    assert len(monitor) <= policy.monitor_window

    registry_stats = registry.stats
    assert registry_stats.fits == 1  # single-flight cold fit
    assert registry_stats.refreshes >= 1  # the sweep genuinely refreshed
    # stats() after stop() reports the frozen serving window.
    assert final.elapsed_s > 0
    assert final.records_per_second > 0
