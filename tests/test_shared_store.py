"""SharedArrayStore: refcounts, hygiene, and bit-identical shared loads."""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core import FisOne
from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import load_artifacts, save_artifacts
from repro.serving.shared_store import SharedArrayStore, SharedStoreError

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX shared-memory filesystem"
)


def shm_segments(prefix: str):
    return [name for name in os.listdir("/dev/shm") if name.startswith(f"{prefix}-")]


@pytest.fixture
def prefix(request):
    """A per-test segment prefix, swept clean afterwards no matter what."""
    value = f"fisone-test-{os.getpid()}-{request.node.name[:24]}"
    yield value
    SharedArrayStore.sweep(value)


def sample_arrays():
    return {
        "matrix": np.arange(24, dtype=np.float64).reshape(4, 6),
        "ints": np.arange(7, dtype=np.int64),
        "token": np.array("cafebabe"),  # 0-d unicode, like the save token
    }


class TestPublishAttach:
    def test_roundtrip_preserves_values_dtypes_and_shapes(self, prefix):
        arrays = sample_arrays()
        with SharedArrayStore(prefix=prefix) as store:
            views = store.publish("bundle", arrays)
            for name, original in arrays.items():
                assert views[name].dtype == original.dtype
                assert views[name].shape == original.shape
                assert np.array_equal(views[name], original)

    def test_views_are_read_only(self, prefix):
        with SharedArrayStore(prefix=prefix) as store:
            views = store.publish("bundle", sample_arrays())
            with pytest.raises((ValueError, RuntimeError)):
                views["matrix"][0, 0] = 99.0

    def test_attach_returns_none_for_unknown_bundle(self, prefix):
        with SharedArrayStore(prefix=prefix) as store:
            assert store.attach("never-published") is None

    def test_object_dtype_is_rejected(self, prefix):
        with SharedArrayStore(prefix=prefix) as store:
            with pytest.raises(SharedStoreError, match="object dtype"):
                store.publish("bad", {"keys": np.array(["a", "b"], dtype=object)})

    def test_get_or_publish_runs_producer_exactly_once(self, prefix):
        calls = []

        def producer():
            calls.append(1)
            return sample_arrays()

        with SharedArrayStore(prefix=prefix) as store:
            first = store.get_or_publish("bundle", producer)
            second = store.get_or_publish("bundle", producer)
            assert len(calls) == 1
            assert np.array_equal(first["matrix"], second["matrix"])

    def test_cross_process_attach_sees_same_values(self, prefix):
        def child(queue):
            with SharedArrayStore(prefix=prefix, unlink_on_close=False) as store:
                views = store.attach("bundle")
                queue.put(
                    None
                    if views is None
                    else (float(views["matrix"].sum()), str(views["token"].item()))
                )

        with SharedArrayStore(prefix=prefix) as store:
            store.publish("bundle", sample_arrays())
            context = multiprocessing.get_context("fork")
            queue = context.Queue()
            process = context.Process(target=child, args=(queue,))
            process.start()
            payload = queue.get(timeout=30)
            process.join(timeout=30)
        assert payload == (float(sample_arrays()["matrix"].sum()), "cafebabe")


class TestRefcounts:
    def test_attach_detach_balance(self, prefix):
        with SharedArrayStore(prefix=prefix) as store:
            store.publish("bundle", sample_arrays())
            assert store.refcount("bundle") == 1
            store.attach("bundle")
            store.attach("bundle")
            assert store.refcount("bundle") == 3
            store.detach("bundle")
            assert store.refcount("bundle") == 2
            store.detach("bundle")
            store.detach("bundle")
            assert store.refcount("bundle") == 0

    def test_detach_unattached_raises(self, prefix):
        with SharedArrayStore(prefix=prefix) as store:
            with pytest.raises(SharedStoreError, match="not attached"):
                store.detach("bundle")

    def test_owner_detach_to_zero_unlinks(self, prefix):
        store = SharedArrayStore(prefix=prefix)
        store.publish("bundle", sample_arrays())
        assert len(shm_segments(prefix)) == 1
        store.detach("bundle")
        assert shm_segments(prefix) == []
        store.close()


class TestLifecycleHygiene:
    def test_close_unlinks_owned_segments(self, prefix):
        store = SharedArrayStore(prefix=prefix)
        store.publish("one", sample_arrays())
        store.publish("two", {"x": np.ones(3)})
        assert len(shm_segments(prefix)) == 2
        store.close()
        assert shm_segments(prefix) == []

    def test_close_is_idempotent_and_rejects_further_use(self, prefix):
        store = SharedArrayStore(prefix=prefix)
        store.publish("bundle", sample_arrays())
        store.close()
        store.close()
        with pytest.raises(SharedStoreError, match="closed"):
            store.publish("bundle", sample_arrays())

    def test_attacher_close_leaves_segment_for_siblings(self, prefix):
        owner = SharedArrayStore(prefix=prefix, unlink_on_close=False)
        owner.publish("bundle", sample_arrays())
        attacher = SharedArrayStore(prefix=prefix)
        assert attacher.attach("bundle") is not None
        attacher.close()  # not the creator: must not unlink
        assert len(shm_segments(prefix)) == 1
        owner.close()

    def test_crashed_worker_leaks_segment_and_sweep_reaps_it(self, prefix):
        """A SIGKILLed publisher cannot run atexit; sweep() is the backstop."""

        def crasher():
            store = SharedArrayStore(prefix=prefix, unlink_on_close=False)
            store.publish("crashy", {"x": np.ones(8)})
            os.kill(os.getpid(), signal.SIGKILL)

        context = multiprocessing.get_context("fork")
        process = context.Process(target=crasher)
        process.start()
        process.join(timeout=30)
        assert process.exitcode == -signal.SIGKILL
        assert len(shm_segments(prefix)) == 1, "crash should leak exactly one segment"
        removed = SharedArrayStore.sweep(prefix)
        assert len(removed) == 1
        assert shm_segments(prefix) == []

    def test_sweep_ignores_other_prefixes(self, prefix):
        other = f"{prefix}x"  # shares a textual prefix but not the namespace
        with SharedArrayStore(prefix=other) as neighbour:
            neighbour.publish("bundle", {"x": np.ones(2)})
            assert SharedArrayStore.sweep(prefix) == []
            assert len(shm_segments(other)) == 1


class TestArtifactIntegration:
    @pytest.fixture(scope="class")
    def fitted_and_stream(self):
        from repro.simulate import generate_single_building

        labeled = generate_single_building(num_floors=3, samples_per_floor=25, seed=21)
        train, stream = labeled.holdout_split(train_per_floor=18)
        anchor = train.pick_labeled_sample(floor=0)
        observed = train.strip_labels(keep_record_ids=[anchor.record_id])
        fitted = FisOne(FAST_CONFIG).fit(observed, anchor.record_id)
        return fitted, observed, [record.without_floor() for record in stream]

    def test_labels_bit_identical_shared_vs_private(
        self, fitted_and_stream, tmp_path, prefix
    ):
        fitted, observed, stream = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        private = load_artifacts(tmp_path / "model")
        with SharedArrayStore(prefix=prefix) as store:
            shared = load_artifacts(tmp_path / "model", shared_store=store)
            assert np.array_equal(private.result.embeddings, shared.result.embeddings)
            assert np.array_equal(private.centroids, shared.centroids)
            for a, b in zip(private.online_floors(stream), shared.online_floors(stream)):
                assert np.array_equal(a, b)
            assert np.array_equal(private.predict(observed), shared.predict(observed))

    def test_second_load_attaches_one_physical_copy(
        self, fitted_and_stream, tmp_path, prefix
    ):
        fitted, _, _ = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        with SharedArrayStore(prefix=prefix) as store:
            first = load_artifacts(tmp_path / "model", shared_store=store)
            assert len(shm_segments(prefix)) == 1
            second = load_artifacts(tmp_path / "model", shared_store=store)
            assert len(shm_segments(prefix)) == 1, "second load must attach, not copy"
            assert np.shares_memory(first.centroids, second.centroids)
            (bundle,) = list(store._bundles)
            assert store.refcount(bundle) == 2

    def test_resave_gets_a_fresh_bundle(self, fitted_and_stream, tmp_path, prefix):
        """A new save token must never alias the previous generation's arrays."""
        fitted, _, _ = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        with SharedArrayStore(prefix=prefix) as store:
            load_artifacts(tmp_path / "model", shared_store=store)
            save_artifacts(fitted, tmp_path / "model")  # fresh token
            load_artifacts(tmp_path / "model", shared_store=store)
            assert len(store._bundles) == 2
