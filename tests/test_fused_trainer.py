"""The fused training path must be bit-identical to the reference path.

``RFGNNTrainer(fused=True)`` — per-epoch batch-tensor deduplication,
flattened-``bincount`` gradient scatters, sparse-lazy Adam, consume-only
RNG advance — exists purely for speed; every output bit (losses, model
parameters, embeddings) must match ``fused=False``, which runs the
straightforward per-batch reference implementation with dense Adam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.model import RFGNNConfig
from repro.gnn.trainer import RFGNNTrainer
from repro.graph.bipartite import BipartiteGraph


def make_trainers(dataset, config, seed, **kwargs):
    graph = BipartiteGraph.from_dataset(dataset)
    reference = RFGNNTrainer(graph, config, seed=seed, fused=False, **kwargs)
    fused = RFGNNTrainer(graph, config, seed=seed, fused=True, **kwargs)
    return reference, fused


def assert_models_identical(reference: RFGNNTrainer, fused: RFGNNTrainer) -> None:
    for ref_group, fused_group in zip(
        reference.model.parameters(), fused.model.parameters()
    ):
        for key in ref_group:
            assert np.array_equal(ref_group[key], fused_group[key]), (
                f"parameter {key!r} diverged between fused and reference paths"
            )


CONFIGS = [
    pytest.param(
        RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(8, 4)), id="attention"
    ),
    pytest.param(
        RFGNNConfig(
            embedding_dim=8, neighbor_sample_sizes=(6, 3), attention=False
        ),
        id="uniform",
    ),
    pytest.param(
        RFGNNConfig(
            embedding_dim=12,
            neighbor_sample_sizes=(5,),
            num_hops=1,
            train_node_features=False,
        ),
        id="frozen-features-1hop",
    ),
]


class TestFusedEqualsReference:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_losses_params_and_embeddings_bit_identical(
        self, small_building_dataset, config
    ):
        reference, fused = make_trainers(
            small_building_dataset,
            config,
            seed=5,
            num_epochs=2,
            max_pairs_per_epoch=6_000,
        )
        ref_embeddings = reference.fit()
        fused_embeddings = fused.fit()
        assert reference.history.epoch_losses == fused.history.epoch_losses
        assert_models_identical(reference, fused)
        assert np.array_equal(ref_embeddings, fused_embeddings)

    def test_tiny_graph_with_ragged_tail_batches(self, tiny_dataset):
        """Graphs far smaller than one batch exercise the np.unique tail path."""
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(4, 3))
        reference, fused = make_trainers(tiny_dataset, config, seed=2, num_epochs=3)
        ref_embeddings = reference.fit()
        fused_embeddings = fused.fit()
        assert reference.history.epoch_losses == fused.history.epoch_losses
        assert np.array_equal(ref_embeddings, fused_embeddings)

    def test_multiple_full_batches_per_epoch(self, small_building_dataset):
        """A small batch_size forces several full slab-deduplicated batches."""
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(6, 3))
        reference, fused = make_trainers(
            small_building_dataset,
            config,
            seed=7,
            num_epochs=1,
            batch_size=64,
            max_pairs_per_epoch=1_000,
        )
        reference.fit()
        fused.fit()
        assert reference.history.epoch_losses == fused.history.epoch_losses
        assert_models_identical(reference, fused)


class TestConsumeOnlyRngAdvance:
    def test_fit_without_embeddings_keeps_stream_position(
        self, small_building_dataset
    ):
        """``fit(return_embeddings=False)`` must leave the sampler RNG exactly
        where the discarded embedding pass would have — embeddings computed
        *afterwards* (as the pipeline does, with inference sample sizes)
        depend on that stream position bit-for-bit."""
        config = RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(8, 4))
        graph = BipartiteGraph.from_dataset(small_building_dataset)
        with_pass = RFGNNTrainer(
            graph, config, seed=3, num_epochs=1, max_pairs_per_epoch=4_000
        )
        without_pass = RFGNNTrainer(
            graph, config, seed=3, num_epochs=1, max_pairs_per_epoch=4_000
        )
        with_pass.fit(return_embeddings=True)
        assert without_pass.fit(return_embeddings=False) is None
        after_with = with_pass.model.embed_nodes(sample_sizes=(12, 6))
        after_without = without_pass.model.embed_nodes(sample_sizes=(12, 6))
        assert np.array_equal(after_with, after_without)


class TestEmbedNodesConfigIsolation:
    def test_embed_nodes_does_not_mutate_model_config(self, small_building_dataset):
        """Inference-time sample-size overrides must not leak into the model's
        training configuration (the old implementation swapped self.config
        and restored it, which was not concurrency- or exception-safe)."""
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(6, 3))
        graph = BipartiteGraph.from_dataset(small_building_dataset)
        trainer = RFGNNTrainer(
            graph, config, seed=1, num_epochs=1, max_pairs_per_epoch=2_000
        )
        trainer.fit(return_embeddings=False)
        before = trainer.model.config
        trainer.model.embed_nodes(sample_sizes=(10, 5), num_hops=2)
        assert trainer.model.config is before
        assert trainer.model.config.neighbor_sample_sizes == (6, 3)
