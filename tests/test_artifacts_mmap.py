"""Zero-copy (mmap) artifact loads: bit-identity with eager loads, safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FisOne
from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import BuildingRegistry, load_artifacts, save_artifacts
from repro.serving.artifacts import ARRAYS_FILENAME, ArtifactError

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)


@pytest.fixture(scope="module")
def fitted_and_stream():
    from repro.simulate import generate_single_building

    labeled = generate_single_building(num_floors=3, samples_per_floor=25, seed=9)
    train, stream = labeled.holdout_split(train_per_floor=18)
    anchor = train.pick_labeled_sample(floor=0)
    observed = train.strip_labels(keep_record_ids=[anchor.record_id])
    fitted = FisOne(FAST_CONFIG).fit(observed, anchor.record_id)
    return fitted, observed, [record.without_floor() for record in stream]


class TestMmapLoadEquivalence:
    def test_labels_bit_identical_to_eager_load(self, fitted_and_stream, tmp_path):
        fitted, observed, stream = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        eager = load_artifacts(tmp_path / "model")
        mapped = load_artifacts(tmp_path / "model", mmap=True)
        for a, b in zip(eager.online_floors(stream), mapped.online_floors(stream)):
            assert np.array_equal(a, b)
        assert np.array_equal(eager.predict(observed), mapped.predict(observed))

    def test_arrays_equal_and_read_only(self, fitted_and_stream, tmp_path):
        fitted, _, _ = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        mapped = load_artifacts(tmp_path / "model", mmap=True)
        assert np.array_equal(mapped.centroids, fitted.centroids)
        assert np.array_equal(mapped.result.embeddings, fitted.result.embeddings)
        # The big arrays really are zero-copy maps, and read-only: an
        # accidental in-place write must fail loudly instead of silently
        # corrupting the process-shared pages.
        assert isinstance(mapped.centroids, np.memmap)
        assert not mapped.centroids.flags.writeable
        assert not mapped.result.embeddings.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            mapped.centroids[0, 0] = 1.0

    def test_compressed_artifacts_fall_back_to_eager_read(
        self, fitted_and_stream, tmp_path
    ):
        fitted, _, stream = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model", compress=True)
        eager = load_artifacts(tmp_path / "model")
        mapped = load_artifacts(tmp_path / "model", mmap=True)
        # Deflated members cannot be mapped; the fallback must still produce
        # the same model.
        assert not isinstance(mapped.centroids, np.memmap)
        for a, b in zip(eager.online_floors(stream), mapped.online_floors(stream)):
            assert np.array_equal(a, b)

    def test_mmap_loaded_model_round_trips_through_save(
        self, fitted_and_stream, tmp_path
    ):
        fitted, _, stream = fitted_and_stream
        save_artifacts(fitted, tmp_path / "first")
        mapped = load_artifacts(tmp_path / "first", mmap=True)
        save_artifacts(mapped, tmp_path / "second")
        again = load_artifacts(tmp_path / "second", mmap=True)
        for a, b in zip(fitted.online_floors(stream), again.online_floors(stream)):
            assert np.array_equal(a, b)

    def test_mmap_loaded_model_can_refresh(self, fitted_and_stream, tmp_path):
        from repro.signals.record import SignalRecord

        fitted, _, stream = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        mapped = load_artifacts(tmp_path / "model", mmap=True)
        new_records = [
            SignalRecord(f"fresh-{i}", dict(record.readings))
            for i, record in enumerate(stream[:6])
        ]
        # The refresh pipeline copies before mutating; a read-only mapped
        # parent must warm-start a new generation without error.
        result = mapped.refresh(new_records, fine_tune_epochs=1)
        assert result.fitted.model_version == mapped.model_version + 1

    def test_registry_mmap_mode_serves_identical_labels(
        self, fitted_and_stream, tmp_path
    ):
        fitted, _, stream = fitted_and_stream
        store = tmp_path / "store"
        save_artifacts(fitted, store / "bldg")
        eager_registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG)
        mmap_registry = BuildingRegistry(
            store_dir=store, config=FAST_CONFIG, mmap=True
        )
        eager_labels = eager_registry.label("bldg", stream)
        mmap_labels = mmap_registry.label("bldg", stream)
        assert eager_labels == mmap_labels
        assert mmap_registry.stats.loads == 1


class TestMmapErrorCases:
    def test_truncated_npz_raises_artifact_error(self, fitted_and_stream, tmp_path):
        fitted, _, _ = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        arrays_path = tmp_path / "model" / ARRAYS_FILENAME
        blob = arrays_path.read_bytes()
        arrays_path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ArtifactError):
            load_artifacts(tmp_path / "model", mmap=True)
        with pytest.raises(ArtifactError):
            load_artifacts(tmp_path / "model")

    def test_garbage_npz_raises_artifact_error(self, fitted_and_stream, tmp_path):
        fitted, _, _ = fitted_and_stream
        save_artifacts(fitted, tmp_path / "model")
        (tmp_path / "model" / ARRAYS_FILENAME).write_bytes(b"not a zip archive")
        with pytest.raises(ArtifactError):
            load_artifacts(tmp_path / "model", mmap=True)
