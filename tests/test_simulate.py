"""Tests for the RF propagation simulator and dataset/fleet generators."""

import random

import numpy as np
import pytest

from repro.simulate.access_point import AccessPoint, generate_mac_address, place_access_points
from repro.simulate.building import Atrium, Building, BuildingGeometry
from repro.simulate.collector import CollectionConfig
from repro.simulate.fleet import (
    MICROSOFT_FLOOR_DISTRIBUTION,
    FleetConfig,
    floor_counts_for_fleet,
    generate_mall_fleet,
    generate_microsoft_like_fleet,
)
from repro.simulate.generators import (
    BuildingConfig,
    generate_building,
    generate_building_dataset,
    mall_building_config,
    office_building_config,
)
from repro.simulate.pathloss import FloorAttenuationPathLoss, LogDistancePathLoss


class TestPathLoss:
    def test_monotone_in_distance(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        assert model.received_power_dbm(15.0, 5.0, 0) > model.received_power_dbm(15.0, 50.0, 0)

    def test_reference_distance_clamp(self):
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)

    def test_floor_attenuation_monotone_in_floors(self):
        model = FloorAttenuationPathLoss(base=LogDistancePathLoss(shadowing_sigma_db=0.0))
        rss = [model.received_power_dbm(15.0, 10.0, floors) for floors in range(4)]
        assert all(earlier > later for earlier, later in zip(rss, rss[1:]))

    def test_floor_loss_cumulative(self):
        model = FloorAttenuationPathLoss(floor_attenuation_db=(20.0, 10.0))
        assert model.floor_loss_db(0) == 0.0
        assert model.floor_loss_db(1) == 20.0
        assert model.floor_loss_db(2) == 30.0
        assert model.floor_loss_db(4) == 50.0  # last increment reused

    def test_shadowing_is_random_but_seeded(self):
        model = LogDistancePathLoss(shadowing_sigma_db=5.0)
        a = model.received_power_dbm(15.0, 10.0, 0, rng=np.random.default_rng(1))
        b = model.received_power_dbm(15.0, 10.0, 0, rng=np.random.default_rng(1))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ValueError):
            FloorAttenuationPathLoss(floor_attenuation_db=())


class TestAccessPoints:
    def test_mac_address_format(self):
        mac = generate_mac_address(random.Random(0))
        octets = mac.split(":")
        assert len(octets) == 6
        assert all(len(octet) == 2 for octet in octets)
        first = int(octets[0], 16)
        assert first & 0x01 == 0  # unicast
        assert first & 0x02 == 0x02  # locally administered

    def test_place_access_points_unique_macs(self):
        existing = set()
        aps = place_access_points(
            20, 50.0, 30.0, floor=0, rng=random.Random(0), existing_macs=existing
        )
        assert len({ap.mac for ap in aps}) == 20
        assert len(existing) == 20

    def test_ap_validation(self):
        with pytest.raises(ValueError):
            AccessPoint("aa", (0.0, 0.0), floor=-1)
        with pytest.raises(ValueError):
            AccessPoint("aa", (0.0, 0.0), floor=0, tx_power_dbm=99.0)

    def test_distance_includes_floor_height(self):
        ap = AccessPoint("aa", (0.0, 0.0), floor=2)
        assert ap.distance_to((0.0, 0.0), floor=0, floor_height_m=4.0) == pytest.approx(8.0)


class TestBuilding:
    def _building(self, num_floors=3):
        aps = [
            AccessPoint(f"ap{floor}", (10.0, 10.0), floor=floor, tx_power_dbm=15.0)
            for floor in range(num_floors)
        ]
        return Building(BuildingGeometry(num_floors=num_floors, width_m=40.0, depth_m=30.0), aps)

    def test_scan_prefers_same_floor(self):
        building = self._building()
        readings = building.scan((10.0, 10.0), floor=1)
        assert readings["ap1"] > readings.get("ap0", -200.0)

    def test_scan_max_aps(self):
        building = self._building()
        readings = building.scan((10.0, 10.0), floor=1, max_aps=1)
        assert len(readings) == 1

    def test_scan_floor_out_of_range(self):
        with pytest.raises(ValueError):
            self._building().scan((0.0, 0.0), floor=5)

    def test_ap_floor_validation(self):
        with pytest.raises(ValueError):
            Building(
                BuildingGeometry(num_floors=1),
                [AccessPoint("aa", (0.0, 0.0), floor=3)],
            )

    def test_atrium_increases_spillover(self):
        geometry = BuildingGeometry(
            num_floors=4,
            width_m=40.0,
            depth_m=30.0,
            atrium=Atrium(center=(10.0, 10.0), radius_m=8.0),
        )
        ap_in = AccessPoint("in", (10.0, 10.0), floor=3, tx_power_dbm=15.0)
        ap_out = AccessPoint("out", (35.0, 25.0), floor=3, tx_power_dbm=15.0)
        building = Building(geometry, [ap_in, ap_out])
        rss_in = building.received_power_dbm(ap_in, (10.0, 10.0), floor=0)
        rss_out = building.received_power_dbm(ap_out, (35.0, 25.0), floor=0)
        assert rss_in > rss_out  # the atrium path skips three slabs

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BuildingGeometry(num_floors=0)
        with pytest.raises(ValueError):
            Atrium(center=(0.0, 0.0), radius_m=0.0)


class TestCollector:
    def test_collect_labels_and_counts(self, small_building_dataset):
        summary = small_building_dataset.summary()
        assert summary.labeled_fraction == 1.0
        assert summary.num_floors == 3
        assert all(count == 25 for count in summary.records_per_floor.values())

    def test_collect_is_reproducible(self):
        config = BuildingConfig(
            num_floors=2,
            aps_per_floor=5,
            collection=CollectionConfig(samples_per_floor=10, scans_per_contributor=5),
        )
        a = generate_building_dataset(config, seed=5)
        b = generate_building_dataset(config, seed=5)
        assert a.record_ids == b.record_ids
        assert a[0].readings == b[0].readings

    def test_different_seeds_differ(self):
        config = BuildingConfig(
            num_floors=2,
            aps_per_floor=5,
            collection=CollectionConfig(samples_per_floor=10, scans_per_contributor=5),
        )
        a = generate_building_dataset(config, seed=5)
        b = generate_building_dataset(config, seed=6)
        assert a[0].readings != b[0].readings

    def test_collection_config_validation(self):
        with pytest.raises(ValueError):
            CollectionConfig(samples_per_floor=0)
        with pytest.raises(ValueError):
            CollectionConfig(detection_miss_rate=1.5)
        with pytest.raises(ValueError):
            CollectionConfig(max_aps_per_scan=0)

    def test_collector_records_within_footprint(self, small_building_dataset):
        for record in small_building_dataset:
            x, y = record.position
            assert 0.0 <= x <= 60.0
            assert 0.0 <= y <= 40.0


class TestFleet:
    def test_floor_counts_distribution(self):
        counts = floor_counts_for_fleet(100)
        assert len(counts) == 100
        assert set(counts) <= set(MICROSOFT_FLOOR_DISTRIBUTION)
        # three-floor buildings are the most common bucket
        assert counts.count(3) >= counts.count(10)

    def test_floor_counts_small_fleet(self):
        assert len(floor_counts_for_fleet(1)) == 1
        with pytest.raises(ValueError):
            floor_counts_for_fleet(0)

    def test_microsoft_like_fleet(self):
        fleet = generate_microsoft_like_fleet(FleetConfig(num_buildings=3, samples_per_floor=10))
        assert len(fleet) == 3
        assert all(dataset.num_floors >= 3 for dataset in fleet)

    def test_mall_fleet_floor_counts(self):
        fleet = generate_mall_fleet(samples_per_floor=10)
        assert [dataset.num_floors for dataset in fleet] == [5, 5, 7]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_buildings=0)

    def test_building_config_helpers(self):
        office = office_building_config(4, samples_per_floor=20)
        mall = mall_building_config(5, samples_per_floor=20)
        assert office.with_atrium is False
        assert mall.with_atrium is True
        assert office.num_floors == 4
        assert mall.collection.samples_per_floor == 20

    def test_generate_building_has_all_floors_covered(self):
        building = generate_building(BuildingConfig(num_floors=3, aps_per_floor=4), seed=0)
        for floor in range(3):
            assert len(building.access_points_on_floor(floor)) == 4
