"""Tests for the experiment runner, spillover statistics and reporting helpers."""

import pytest

from repro.baselines.mds import MDSBaseline
from repro.core.config import FisOneConfig
from repro.experiments.reporting import (
    format_mean_std,
    format_ratio_table,
    format_table,
    improvement_percent,
    summaries_as_dict,
)
from repro.experiments.runner import (
    BuildingEvaluation,
    evaluate_baseline_on_building,
    evaluate_fis_one_on_building,
    evaluate_fleet,
    indexing_sequence,
    pick_anchor,
    summarize,
)
from repro.experiments.spillover import spillover_by_floor_distance, spillover_histogram
from repro.gnn.model import RFGNNConfig


def fast_config():
    return FisOneConfig(
        gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(6, 3)),
        num_epochs=2,
        max_pairs_per_epoch=6000,
        inference_passes=2,
        inference_sample_sizes=(15, 8),
    )


class TestIndexingSequence:
    def test_perfect_prediction(self):
        truth = [0, 0, 1, 1, 2, 2]
        assert indexing_sequence(truth, truth, 3) == [1, 2, 3]

    def test_swapped_floors(self):
        truth = [0, 0, 1, 1]
        predicted = [1, 1, 0, 0]
        assert indexing_sequence(truth, predicted, 2) == [2, 1]

    def test_empty_predicted_floor(self):
        truth = [0, 0, 1, 1]
        predicted = [0, 0, 0, 0]
        sequence = indexing_sequence(truth, predicted, 2)
        assert sequence[1] == 0  # the empty floor can never match


class TestSpillover:
    def test_histogram(self, small_building_dataset):
        histogram = spillover_histogram(small_building_dataset)
        assert sum(histogram.values()) == len(small_building_dataset.macs)
        assert all(1 <= floors <= 3 for floors in histogram)

    def test_adjacent_floors_share_more(self, medium_building_dataset):
        by_distance = spillover_by_floor_distance(medium_building_dataset)
        assert by_distance[1] >= by_distance[max(by_distance)]

    def test_unlabeled_dataset_rejected(self, small_building_dataset):
        stripped = small_building_dataset.strip_labels()
        with pytest.raises(ValueError):
            spillover_histogram(stripped)


class TestRunner:
    def test_pick_anchor(self, small_building_dataset):
        anchor = pick_anchor(small_building_dataset, floor=0)
        assert small_building_dataset.get(anchor).floor == 0

    def test_evaluate_fis_one(self, small_building_dataset):
        evaluation = evaluate_fis_one_on_building(small_building_dataset, fast_config())
        assert isinstance(evaluation, BuildingEvaluation)
        assert evaluation.method == "FIS-ONE"
        assert 0.0 <= evaluation.nmi <= 1.0
        assert 0.0 <= evaluation.edit_distance <= 1.0
        assert evaluation.num_floors == 3
        assert set(evaluation.as_dict()) == {"ari", "nmi", "edit_distance", "accuracy"}

    def test_evaluate_baseline(self, small_building_dataset):
        evaluation = evaluate_baseline_on_building(
            small_building_dataset, MDSBaseline(embedding_dim=8), fast_config()
        )
        assert evaluation.method == "MDS"
        assert 0.0 <= evaluation.accuracy <= 1.0

    def test_evaluate_fleet_and_summarize(self, small_building_dataset):
        methods = {
            "MDS": lambda ds: evaluate_baseline_on_building(
                ds, MDSBaseline(embedding_dim=8), fast_config()
            ),
        }
        results = evaluate_fleet([small_building_dataset], methods)
        assert set(results) == {"MDS"}
        summary = summarize(results["MDS"], "MDS")
        assert summary.num_buildings == 1
        assert set(summary.mean) == {"ari", "nmi", "edit_distance", "accuracy"}
        assert all(std == 0.0 for std in summary.std.values())

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([], "none")


class TestReporting:
    def _summaries(self):
        evaluations = [
            BuildingEvaluation("b1", "FIS-ONE", 0.9, 0.92, 0.95, 0.9, 5),
            BuildingEvaluation("b2", "FIS-ONE", 0.8, 0.82, 0.85, 0.8, 4),
        ]
        return [summarize(evaluations, "FIS-ONE")]

    def test_format_mean_std(self):
        assert format_mean_std(0.8564, 0.0861) == "0.856(0.086)"

    def test_format_table(self):
        table = format_table(self._summaries(), title="Table I")
        assert "Table I" in table
        assert "FIS-ONE" in table
        assert "ARI" in table and "EDIT_DISTANCE" in table

    def test_format_ratio_table(self):
        table = format_ratio_table(
            {"FIS-ONE": {"ari": 0.9, "nmi": 0.92}}, column_order=["ari", "nmi"]
        )
        assert "FIS-ONE" in table
        assert "0.900" in table

    def test_improvement_percent(self):
        assert improvement_percent(1.2, 1.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            improvement_percent(1.0, 0.0)

    def test_summaries_as_dict(self):
        as_dict = summaries_as_dict(self._summaries())
        assert as_dict["FIS-ONE"]["ari"] == pytest.approx(0.85)


class TestPackageMetadata:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        assert hasattr(repro, "FisOne")
        assert hasattr(repro, "SignalDataset")
