"""TCP fleet transport end-to-end: identity, backpressure, failover.

The contract under test: ``transport="tcp"`` is an invisible substitution —
labels bit-identical to the pipe transport and to a single-process
:class:`FleetServer` — while adding what only a network transport can
offer: shards in unrelated processes (connect mode), server-side NACK
backpressure that survives the wire, and heartbeat-driven failover that
keeps serving through a SIGKILLed shard.
"""

from __future__ import annotations

import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.core.config import FisOneConfig
from repro.gnn.model import RFGNNConfig
from repro.serving import (
    BuildingRegistry,
    FleetServer,
    LabelRequest,
    ShardedFleetServer,
    ShardServer,
)
from repro.serving.sharded import ConsistentHashRing, ShardDownError, stable_hash64
from repro.serving.transport import OP_ERR, OP_PING, OP_PONG, encode_frame, recv_frame
from repro.simulate import generate_single_building
from repro.telemetry import EVENT_SHARD_DOWN, EVENT_SHARD_RECOVERED

FAST_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=2,
    max_pairs_per_epoch=8_000,
    inference_passes=1,
    inference_sample_sizes=(20, 10),
)

BUILDING_IDS = ("net-a", "net-b", "net-c", "net-d")


@pytest.fixture(scope="module")
def net_store(tmp_path_factory):
    """Four small fitted buildings persisted to one store, plus streams."""
    store = tmp_path_factory.mktemp("net-store")
    registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG, capacity=4)
    streams = {}
    for index, building_id in enumerate(BUILDING_IDS):
        labeled = generate_single_building(
            num_floors=3, samples_per_floor=25, seed=60 + index
        )
        train, stream = labeled.holdout_split(train_per_floor=18)
        anchor = train.pick_labeled_sample(floor=0)
        observed = train.strip_labels(keep_record_ids=[anchor.record_id])
        registry.register(building_id, observed, anchor_record_id=anchor.record_id)
        registry.get(building_id)
        streams[building_id] = [record.without_floor() for record in stream]
    return store, streams


def make_requests(streams, chunk=5):
    requests = []
    for building_id, stream in streams.items():
        for start in range(0, len(stream), chunk):
            block = stream[start : start + chunk]
            if block:
                requests.append(
                    LabelRequest(
                        request_id=f"req-{len(requests)}",
                        building_id=building_id,
                        records=tuple(block),
                    )
                )
    return requests


def label_tuples(responses):
    return [
        (label.record_id, label.floor, label.confidence, label.known_mac_fraction)
        for response in responses
        for label in response.labels
    ]


def serve_sequentially(submit, requests):
    """Submit one request at a time, awaiting each before the next.

    Bit-identity comparisons need identical *batch composition* on every
    topology: the centroid scoring runs one BLAS matmul per coalesced
    batch, and BLAS kernels may regroup reductions differently for
    different matrix shapes (ulp-level differences).  Sequential
    submit-and-wait pins every topology to one-request-per-batch, making
    the comparison deterministic; the pipelined paths get their own
    (composition-insensitive) assertions.
    """
    return [submit(request).result(timeout=120) for request in requests]


@pytest.fixture(scope="module")
def reference_labels(net_store):
    """Single-process FleetServer labels: the bit-identity ground truth.

    ``mmap=True`` matches how fleet workers load artifacts: BLAS kernel
    selection keys off buffer alignment, so a heap-loaded and an mmap'd
    copy of the same model can score centroids ulps apart.  Bit-identity
    across topologies requires the same artifact representation on both
    sides of the comparison.
    """
    store, streams = net_store
    registry = BuildingRegistry(store_dir=store, config=FAST_CONFIG, mmap=True)
    with FleetServer(registry) as server:
        responses = serve_sequentially(
            lambda request: server.submit(request.building_id, request.records),
            make_requests(streams),
        )
    return label_tuples(responses)


def fleet_submit(fleet):
    return lambda request: fleet.submit(
        request.building_id, request.records, request.request_id
    )


class TestTcpIdentity:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_tcp_labels_match_single_process_server(
        self, net_store, reference_labels, num_workers
    ):
        store, streams = net_store
        with ShardedFleetServer(
            store,
            num_workers=num_workers,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
        ) as fleet:
            responses = serve_sequentially(fleet_submit(fleet), make_requests(streams))
        assert label_tuples(responses) == reference_labels

    def test_tcp_labels_match_pipe_labels(self, net_store):
        store, streams = net_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, shard_capacity=4
        ) as pipe_fleet:
            pipe_labels = label_tuples(
                serve_sequentially(fleet_submit(pipe_fleet), requests)
            )
        with ShardedFleetServer(
            store,
            num_workers=2,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
        ) as tcp_fleet:
            tcp_labels = label_tuples(
                serve_sequentially(fleet_submit(tcp_fleet), requests)
            )
        assert tcp_labels == pipe_labels

    def test_pipelined_serve_completes_in_request_order(self, net_store):
        store, streams = net_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, transport="tcp"
        ) as fleet:
            responses = fleet.serve(requests)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        assert all(
            [label.record_id for label in response.labels]
            == [record.record_id for record in request.records]
            for response, request in zip(responses, requests)
        )

    def test_connect_mode_against_external_shard_servers(self, net_store):
        store, streams = net_store
        requests = make_requests(streams)
        servers = [
            ShardServer(store, shard_index=index, config=FAST_CONFIG, capacity=4).start()
            for index in range(2)
        ]
        try:
            addresses = [f"{host}:{port}" for host, port in (s.address for s in servers)]
            with ShardedFleetServer(
                store, config=FAST_CONFIG, shard_addresses=addresses
            ) as fleet:
                assert fleet.transport == "tcp"
                assert fleet.num_workers == 2
                responses = fleet.serve(requests)
            assert len(responses) == len(requests)
            # The external servers outlive the dispatcher (connect mode
            # does not own them): they still answer a fresh dispatcher.
            with ShardedFleetServer(store, shard_addresses=addresses) as fleet:
                again = fleet.serve(requests[:2])
            assert len(again) == 2
        finally:
            for server in servers:
                server.stop()

    def test_fleet_stats_and_telemetry_merge_over_tcp(self, net_store):
        store, streams = net_store
        with ShardedFleetServer(
            store, num_workers=2, config=FAST_CONFIG, transport="tcp"
        ) as fleet:
            fleet.serve(make_requests(streams)[:4])
            stats = fleet.stats()
            assert stats.num_requests == 4
            assert len(stats.shards) >= 1
            exposition = fleet.render_prometheus()
        assert "fleet_frame_encode_seconds" in exposition
        assert 'side="server"' in exposition
        assert 'side="dispatcher"' in exposition
        assert "fleet_transport_bytes_sent_total" in exposition


class TestBackpressure:
    def test_server_side_nack_travels_end_to_end(self, net_store):
        """A saturated TCP shard NACKs; serve() retries until all complete.

        The server's window (1) is stricter than the dispatcher's (8), so
        pipelined submits overrun the *remote* bound and the rejection has
        to travel back as an OP_NACK frame — the dispatcher surfaces it as
        ShardOverloadedError and serve() honours the retry hint.
        """
        store, streams = net_store
        server = ShardServer(
            store, config=FAST_CONFIG, capacity=4, max_inflight=1
        ).start()
        try:
            host, port = server.address
            with ShardedFleetServer(
                store,
                config=FAST_CONFIG,
                shard_addresses=[f"{host}:{port}"],
                max_inflight=8,
            ) as fleet:
                requests = make_requests(streams, chunk=3)
                responses = fleet.serve(requests)
                assert len(responses) == len(requests)
                assert [r.request_id for r in responses] == [
                    r.request_id for r in requests
                ]
                stats = fleet.stats()
            assert stats.num_rejected > 0  # NACKs were actually exercised
        finally:
            server.stop()


class TestFailover:
    def test_ring_without_remaps_about_one_nth(self):
        ring = ConsistentHashRing(4)
        resized = ring.without(2)
        keys = [f"building-{i}" for i in range(2000)]
        before = [ring.shard_for(k) for k in keys]
        after = [resized.shard_for(k) for k in keys]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        # Exactly the keys owned by the removed shard move (~1/4 of them).
        assert all(a != 2 for a in after)
        assert all(b == a for b, a in zip(before, after) if b != 2)
        assert 0.10 < moved / len(keys) < 0.45

    def test_sigkill_one_shard_serving_continues_bit_identical(
        self, net_store, reference_labels
    ):
        """Kill a TCP shard mid-traffic: the fleet fails over and the full
        request set still completes with labels bit-identical to the
        single-process server."""
        store, streams = net_store
        requests = make_requests(streams)
        with ShardedFleetServer(
            store,
            num_workers=3,
            config=FAST_CONFIG,
            shard_capacity=4,
            transport="tcp",
            heartbeat_interval_s=0.1,
            heartbeat_miss_threshold=2,
        ) as fleet:
            # Warm every shard with the first few requests.
            fleet.serve(requests[:3])
            victim = fleet._shards[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            # The pipelined drain must complete every request despite the
            # kill: in-flight requests on the victim fail over and resubmit.
            responses = fleet.serve(requests)
            assert [r.request_id for r in responses] == [
                r.request_id for r in requests
            ]
            # Post-failover labels stay bit-identical to the single-process
            # server (sequential submits pin the batch composition).
            settled = serve_sequentially(fleet_submit(fleet), requests)
            assert label_tuples(settled) == reference_labels
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                events = [e for e in fleet.fleet_events() if e.kind == EVENT_SHARD_DOWN]
                if events:
                    break
                time.sleep(0.05)
            assert events, "shard death never produced a shard-down event"
            with fleet._ring_lock:
                assert victim.entry not in fleet._ring.entries
            assert fleet.running
        # The dead worker is reaped by stop() without hanging.

    def test_last_shard_down_raises_rather_than_spinning(self, net_store):
        store, streams = net_store
        with ShardedFleetServer(
            store,
            num_workers=1,
            config=FAST_CONFIG,
            transport="tcp",
            heartbeat_interval_s=0.1,
            heartbeat_miss_threshold=2,
        ) as fleet:
            requests = make_requests(streams)[:1]
            fleet.serve(requests)
            os.kill(fleet._shards[0].process.pid, signal.SIGKILL)
            time.sleep(0.3)
            with pytest.raises((ShardDownError, RuntimeError)):
                fleet.serve(requests)

    def test_connect_mode_reconnects_after_server_restart(self, net_store):
        store, streams = net_store
        host = "127.0.0.1"
        # Pin a port so the restarted server is reachable at the same entry.
        probe = socket.socket()
        probe.bind((host, 0))
        port = probe.getsockname()[1]
        probe.close()
        server = ShardServer(store, host, port, config=FAST_CONFIG, capacity=4).start()
        requests = make_requests(streams)[:2]
        try:
            with ShardedFleetServer(
                store,
                config=FAST_CONFIG,
                shard_addresses=[f"{host}:{port}"],
                heartbeat_interval_s=0.1,
                heartbeat_miss_threshold=2,
            ) as fleet:
                fleet.serve(requests)
                server.stop()
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline and not fleet._shards[0].dead:
                    time.sleep(0.05)
                assert fleet._shards[0].dead
                server = ShardServer(
                    store, host, port, config=FAST_CONFIG, capacity=4
                ).start()
                deadline = time.monotonic() + 10.0
                recovered = ()
                while time.monotonic() < deadline:
                    recovered = [
                        e
                        for e in fleet.telemetry.events.snapshot()
                        if e.kind == EVENT_SHARD_RECOVERED
                    ]
                    if recovered:
                        break
                    time.sleep(0.1)
                assert recovered, "down shard never rejoined the ring"
                responses = fleet.serve(requests)
                assert len(responses) == len(requests)
        finally:
            server.stop()


class TestServerRobustness:
    def test_garbage_connection_does_not_kill_the_server(self, net_store):
        store, _ = net_store
        server = ShardServer(store, config=FAST_CONFIG).start()
        try:
            # A peer speaking not-the-protocol gets an error (or a close),
            # and the listener keeps serving well-formed peers.
            hostile = socket.create_connection(server.address, timeout=5.0)
            hostile.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            try:
                op, _, _ = recv_frame(hostile)
                assert op == OP_ERR
            except (EOFError, OSError, RuntimeError):
                pass  # closing without the courtesy ERR is also acceptable
            hostile.close()

            polite = socket.create_connection(server.address, timeout=5.0)
            polite.sendall(encode_frame(OP_PING, 5))
            op, seq, payload = recv_frame(polite)
            assert (op, seq) == (OP_PONG, 5)
            polite.close()
        finally:
            server.stop()

    def test_mid_frame_disconnect_leaves_server_healthy(self, net_store):
        store, _ = net_store
        server = ShardServer(store, config=FAST_CONFIG).start()
        try:
            for _ in range(3):
                rude = socket.create_connection(server.address, timeout=5.0)
                frame = encode_frame(OP_PING, 1, b"")
                # Oversized claim, then vanish mid-payload.
                rude.sendall(frame[:10])
                rude.close()
            polite = socket.create_connection(server.address, timeout=5.0)
            polite.sendall(encode_frame(OP_PING, 9))
            assert recv_frame(polite)[0] == OP_PONG
            polite.close()
        finally:
            server.stop()
