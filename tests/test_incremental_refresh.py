"""Tests for the incremental-refresh subsystem.

Covers the full stack the refresh path threads through: warm-start
initialisation on the GNN model/trainer, seeded k-means, the
``FittedFisOne.refresh`` machinery (graph growth, label-stable floor
matching, version/lineage bookkeeping), the drift monitor and refresh
policy of the serving layer, the fleet-wide refresh sweep, and the
AP-churn / RSS-drift scenario generator feeding all of it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.clustering.assignments import ClusterAssignment
from repro.clustering.kmeans import KMeans
from repro.core import FisOne, FisOneConfig
from repro.core.refresh import default_fine_tune_epochs
from repro.gnn.model import RFGNN, RFGNNConfig, RFGNNInitParams
from repro.gnn.trainer import RFGNNTrainer
from repro.graph.csr import CSRGraph
from repro.indexing.similarity import (
    cluster_mac_frequencies,
    cluster_mac_profile_from_graph,
)
from repro.serving import (
    BuildingRegistry,
    DriftMonitor,
    DriftThresholds,
    FleetServer,
    OnlineFloorLabeler,
    RefreshPolicy,
    load_artifacts,
    save_artifacts,
)
from repro.serving.artifacts import MANIFEST_FILENAME
from repro.serving.results import OnlineLabel
from repro.signals.record import SignalRecord
from repro.simulate import (
    BuildingConfig,
    DriftScenarioConfig,
    generate_drift_scenario,
)
from repro.simulate.collector import CollectionConfig
from repro.simulate.drift import POST_DRIFT_RECORD_PREFIX

#: Small-but-meaningful configuration shared by the refresh fixtures.
REFRESH_CONFIG = FisOneConfig(
    gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(10, 5)),
    num_epochs=3,
    max_pairs_per_epoch=15_000,
    inference_passes=2,
    inference_sample_sizes=(30, 15),
    seed=0,
)


@pytest.fixture(scope="module")
def drift_world():
    """A drift scenario plus a model fitted on its pre-drift survey."""
    scenario = generate_drift_scenario(
        DriftScenarioConfig(
            building=BuildingConfig(
                num_floors=3,
                aps_per_floor=10,
                width_m=70.0,
                depth_m=45.0,
                collection=CollectionConfig(
                    samples_per_floor=30,
                    scans_per_contributor=10,
                    sensitivity_dbm=-90.0,
                ),
                building_id="drift-test",
            ),
            churn_fraction=0.3,
            rss_shift_db=2.0,
            post_samples_per_floor=15,
        ),
        seed=1,
    )
    initial = scenario.initial
    anchor = initial.pick_labeled_sample(floor=0)
    observed = initial.strip_labels(keep_record_ids=[anchor.record_id])
    fitted = FisOne(REFRESH_CONFIG).fit(observed, anchor.record_id)
    return scenario, observed, fitted


@pytest.fixture(scope="module")
def refreshed(drift_world):
    """The fitted model refreshed with the unlabeled post-drift wave."""
    scenario, _, fitted = drift_world
    new_records = [record.without_floor() for record in scenario.drifted]
    return fitted.refresh(new_records)


class TestWarmStartInit:
    def _graph(self, dataset) -> CSRGraph:
        return CSRGraph.from_dataset(dataset)

    def test_init_params_replace_random_init(self, tiny_dataset):
        graph = self._graph(tiny_dataset)
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(4, 2))
        warm_weights = [
            np.full((16, 8), 0.5),
            np.full((16, 8), -0.25),
        ]
        warm_features = np.ones((graph.num_nodes, 8))
        model = RFGNN(
            graph,
            config,
            seed=0,
            init_params=RFGNNInitParams(
                weights=warm_weights, node_features=warm_features
            ),
        )
        for hop in range(2):
            assert np.array_equal(model.weights[hop], warm_weights[hop])
        assert np.array_equal(model.node_features, warm_features)

    def test_init_params_are_copied_not_aliased(self, tiny_dataset):
        graph = self._graph(tiny_dataset)
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(4, 2))
        warm = [np.zeros((16, 8)), np.zeros((16, 8))]
        model = RFGNN(
            graph, config, seed=0, init_params=RFGNNInitParams(weights=warm)
        )
        warm[0][0, 0] = 99.0
        assert model.weights[0][0, 0] == 0.0

    def test_mismatched_weight_shapes_rejected(self, tiny_dataset):
        graph = self._graph(tiny_dataset)
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(4, 2))
        with pytest.raises(ValueError, match="shape"):
            RFGNN(
                graph,
                config,
                init_params=RFGNNInitParams(weights=[np.zeros((3, 3))] * 2),
            )
        with pytest.raises(ValueError, match="matrices"):
            RFGNN(
                graph,
                config,
                init_params=RFGNNInitParams(weights=[np.zeros((16, 8))]),
            )
        with pytest.raises(ValueError, match="node_features"):
            RFGNN(
                graph,
                config,
                init_params=RFGNNInitParams(node_features=np.zeros((2, 8))),
            )

    def test_trainer_passes_init_params_through(self, tiny_dataset):
        graph = self._graph(tiny_dataset)
        config = RFGNNConfig(embedding_dim=8, neighbor_sample_sizes=(4, 2))
        warm_weights = [np.full((16, 8), 0.1), np.full((16, 8), 0.2)]
        trainer = RFGNNTrainer(
            graph,
            config,
            num_epochs=1,
            init_params=RFGNNInitParams(weights=warm_weights),
        )
        assert np.array_equal(trainer.model.weights[0], warm_weights[0])


class TestSeededKMeans:
    def test_seeded_run_is_deterministic_and_label_aligned(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0.0, 0.1, size=(30, 4)) + np.array([1.0, 0, 0, 0])
        blob_b = rng.normal(0.0, 0.1, size=(30, 4)) + np.array([0, 1.0, 0, 0])
        points = np.vstack([blob_a, blob_b])
        # Seed centroid 0 on blob B and centroid 1 on blob A: the seeded run
        # must keep those identities instead of renumbering by chance.
        seeds = np.array([[0.0, 1.0, 0.0, 0.0], [1.0, 0.0, 0.0, 0.0]])
        labels = KMeans(2, seed=3).fit_predict(points, initial_centroids=seeds)
        assert np.all(labels[:30] == 1)
        assert np.all(labels[30:] == 0)
        again = KMeans(2, seed=99).fit_predict(points, initial_centroids=seeds)
        assert np.array_equal(labels, again)

    def test_seed_shape_validated(self):
        points = np.random.default_rng(0).normal(size=(10, 3))
        with pytest.raises(ValueError, match="initial_centroids"):
            KMeans(2).fit_predict(points, initial_centroids=np.zeros((2, 5)))
        with pytest.raises(ValueError, match="initial_centroids"):
            KMeans(2).fit_predict(points, initial_centroids=np.zeros((3, 3)))


class TestGraphOnlyMacProfile:
    def test_matches_dataset_based_profile(self, small_building_dataset):
        graph = CSRGraph.from_dataset(small_building_dataset)
        labels = np.array(
            [record.floor for record in small_building_dataset], dtype=np.int64
        )
        assignment = ClusterAssignment(labels=labels, num_clusters=3)
        from_dataset = cluster_mac_frequencies(small_building_dataset, assignment)
        from_graph = cluster_mac_profile_from_graph(graph, assignment)
        assert from_dataset.macs == from_graph.macs
        assert np.array_equal(from_dataset.frequencies, from_graph.frequencies)

    def test_size_mismatch_rejected(self, small_building_dataset):
        graph = CSRGraph.from_dataset(small_building_dataset)
        assignment = ClusterAssignment(labels=np.zeros(3, dtype=np.int64), num_clusters=2)
        with pytest.raises(ValueError, match="sample nodes"):
            cluster_mac_profile_from_graph(graph, assignment)


class TestRefreshFitted:
    def test_refresh_grows_and_bumps_version(self, drift_world, refreshed):
        scenario, _, fitted = drift_world
        result = refreshed
        assert result.fitted.model_version == fitted.model_version + 1
        assert len(result.fitted.lineage) == 1
        assert result.report.num_new_records == len(scenario.drifted)
        assert result.report.num_skipped == 0
        assert result.report.num_new_macs == len(scenario.introduced_macs)
        assert result.fitted.record_ids[: len(fitted.record_ids)] == fitted.record_ids
        assert len(result.fitted.record_ids) == len(fitted.record_ids) + len(
            scenario.drifted
        )

    def test_refresh_keeps_old_labels_stable(self, drift_world, refreshed):
        _, _, fitted = drift_world
        num_old = len(fitted.record_ids)
        stable = np.mean(
            refreshed.fitted.result.floor_labels[:num_old] == fitted.floor_labels
        )
        assert stable >= 0.95
        assert refreshed.report.label_stability == pytest.approx(float(stable))

    def test_refreshed_model_learned_the_new_macs(self, drift_world, refreshed):
        scenario, _, fitted = drift_world
        for mac in scenario.introduced_macs:
            assert not fitted.encoder.knows_mac(mac)
            assert refreshed.fitted.encoder.knows_mac(mac)

    def test_refreshed_accuracy_on_drifted_wave(self, drift_world, refreshed):
        scenario, _, fitted = drift_world
        truth = np.array(scenario.drifted.ground_truth)
        num_old = len(fitted.record_ids)
        accuracy = np.mean(
            refreshed.fitted.result.floor_labels[num_old:] == truth
        )
        assert accuracy >= 0.8

    def test_duplicate_records_skipped(self, drift_world):
        scenario, observed, fitted = drift_world
        duplicates = [observed[0], observed[1], observed[1]]
        fresh = [record.without_floor() for record in list(scenario.drifted)[:3]]
        result = fitted.refresh(duplicates + fresh + fresh[:1])
        assert result.report.num_new_records == 3
        assert result.report.num_skipped == 4

    def test_refresh_without_graph_rejected(self, drift_world):
        import dataclasses

        from repro.core import RefreshUnavailableError

        _, _, fitted = drift_world
        slim = dataclasses.replace(fitted, graph=None)
        # The concrete type lets fleet sweeps skip unrefreshable models; it
        # stays a ValueError for pre-existing callers.
        with pytest.raises(RefreshUnavailableError, match="no training graph"):
            slim.refresh([])

    def test_fine_tune_epoch_budget(self, drift_world, refreshed):
        _, _, fitted = drift_world
        expected = default_fine_tune_epochs(fitted.config.num_epochs)
        assert refreshed.report.fine_tune_epochs == expected
        assert refreshed.fitted.result.training_history.num_epochs == expected

    def test_refresh_after_artifact_round_trip(self, drift_world, tmp_path):
        # The deployment path: persist, reload, then refresh the loaded
        # model — the persisted graph makes it possible without the dataset.
        scenario, _, fitted = drift_world
        loaded = load_artifacts(save_artifacts(fitted, tmp_path / "b"))
        fresh = [record.without_floor() for record in list(scenario.drifted)[:10]]
        result = loaded.refresh(fresh)
        assert result.fitted.model_version == 1
        assert result.report.num_new_records == 10
        floors, _, known = result.fitted.online_floors(fresh)
        assert np.all((0 <= floors) & (floors < 3))

    def test_refreshed_artifact_round_trips_with_lineage(
        self, refreshed, tmp_path
    ):
        path = save_artifacts(refreshed.fitted, tmp_path / "refreshed")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        assert manifest["model_version"] == 1
        assert len(manifest["lineage"]) == 1
        loaded = load_artifacts(path)
        assert loaded.model_version == 1
        assert loaded.lineage == refreshed.fitted.lineage
        assert np.array_equal(
            loaded.result.floor_labels, refreshed.fitted.result.floor_labels
        )

    def test_chained_refreshes_accumulate_lineage(self, drift_world, refreshed):
        scenario, _, _ = drift_world
        wave = [
            SignalRecord(f"wave2-{i}", dict(record.readings))
            for i, record in enumerate(list(scenario.drifted)[:5])
        ]
        second = refreshed.fitted.refresh(wave, fine_tune_epochs=1)
        assert second.fitted.model_version == 2
        assert len(second.fitted.lineage) == 2
        assert second.fitted.lineage[0] == refreshed.fitted.lineage[0]


class TestDriftMonitor:
    @staticmethod
    def label(confidence: float, known: float, index: int = 0) -> OnlineLabel:
        return OnlineLabel(
            record_id=f"r{index}",
            floor=0,
            confidence=confidence,
            known_mac_fraction=known,
        )

    def test_empty_monitor_is_not_drifted(self):
        monitor = DriftMonitor(window=8)
        snapshot = monitor.snapshot(DriftThresholds(min_records=1))
        assert snapshot.num_records == 0
        assert not snapshot.drifted
        assert snapshot.reasons == ()

    def test_rolling_window_evicts_old_labels(self):
        monitor = DriftMonitor(window=4)
        monitor.observe([self.label(0.1, 0.0, i) for i in range(4)])
        monitor.observe([self.label(0.9, 1.0, i + 4) for i in range(4)])
        snapshot = monitor.snapshot()
        assert snapshot.num_records == 4
        assert snapshot.mean_known_mac_fraction == 1.0
        assert snapshot.blind_fraction == 0.0
        assert monitor.num_observed == 8

    def test_unknown_mac_breach_reported(self):
        monitor = DriftMonitor(window=16)
        monitor.observe([self.label(0.9, 0.5, i) for i in range(10)])
        thresholds = DriftThresholds(
            min_records=5, max_unknown_mac_fraction=0.3, min_mean_confidence=0.0
        )
        snapshot = monitor.snapshot(thresholds)
        assert snapshot.drifted
        assert any("unknown-MAC" in reason for reason in snapshot.reasons)

    def test_low_confidence_breach_reported(self):
        monitor = DriftMonitor(window=16)
        monitor.observe([self.label(0.2, 1.0, i) for i in range(10)])
        thresholds = DriftThresholds(min_records=5, min_mean_confidence=0.5)
        assert monitor.is_drifted(thresholds)

    def test_blind_fraction_breach_reported(self):
        monitor = DriftMonitor(window=16)
        labels = [self.label(0.9, 1.0, i) for i in range(8)]
        labels += [self.label(0.0, 0.0, 8 + i) for i in range(2)]
        monitor.observe(labels)
        thresholds = DriftThresholds(
            min_records=5,
            max_unknown_mac_fraction=1.0,
            max_blind_fraction=0.1,
            min_mean_confidence=0.0,
        )
        snapshot = monitor.snapshot(thresholds)
        assert snapshot.drifted
        assert any("blind" in reason for reason in snapshot.reasons)

    def test_small_windows_never_drift(self):
        monitor = DriftMonitor(window=16)
        monitor.observe([self.label(0.0, 0.0, i) for i in range(3)])
        assert not monitor.is_drifted(DriftThresholds(min_records=50))

    def test_reset_clears_window(self):
        monitor = DriftMonitor(window=8)
        monitor.observe([self.label(0.1, 0.1, i) for i in range(5)])
        monitor.reset()
        assert len(monitor) == 0
        assert not monitor.is_drifted(DriftThresholds(min_records=1))

    def test_histogram_counts_all_records(self):
        monitor = DriftMonitor(window=16)
        monitor.observe(
            [self.label(c, 1.0, i) for i, c in enumerate([0.05, 0.55, 0.95, 1.0])]
        )
        snapshot = monitor.snapshot()
        assert sum(snapshot.confidence_histogram) == 4
        assert snapshot.confidence_histogram[0] == 1
        assert snapshot.confidence_histogram[5] == 1
        assert snapshot.confidence_histogram[9] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(window=0)
        with pytest.raises(ValueError):
            DriftThresholds(min_records=0)
        with pytest.raises(ValueError):
            DriftThresholds(max_blind_fraction=1.5)
        with pytest.raises(ValueError):
            RefreshPolicy(min_new_records=0)
        with pytest.raises(ValueError):
            RefreshPolicy(fine_tune_epochs=0)


@pytest.fixture(scope="module")
def served_drift(drift_world, tmp_path_factory):
    """A registry serving the drift building, with drifted traffic labeled."""
    scenario, observed, fitted = drift_world
    store = tmp_path_factory.mktemp("refresh-store")
    # canary=None: these tests pin the *ungated* refresh accounting (every
    # buffered record trains, the buffer fully drains); the canary gate has
    # its own suite in test_refresh_lifecycle.py.
    policy = RefreshPolicy(
        thresholds=DriftThresholds(
            min_records=20, max_unknown_mac_fraction=0.15, min_mean_confidence=0.0
        ),
        min_new_records=20,
        fine_tune_epochs=1,
        canary=None,
    )
    registry = BuildingRegistry(
        store_dir=store, capacity=4, config=REFRESH_CONFIG, refresh_policy=policy
    )
    registry.add_fitted("drifty", fitted)
    new_records = [record.without_floor() for record in scenario.drifted]
    registry.label("drifty", new_records)
    return scenario, registry, store


class TestRegistryRefresh:
    def test_label_traffic_feeds_monitor_and_buffer(self, served_drift):
        scenario, registry, _ = served_drift
        snapshot = registry.drift_snapshot("drifty")
        assert snapshot.num_records == len(scenario.drifted)
        assert snapshot.mean_known_mac_fraction < 1.0
        assert registry.buffered_record_count("drifty") == len(scenario.drifted)

    def test_refresh_if_drifted_runs_and_writes_through(self, served_drift):
        scenario, registry, store = served_drift
        assert registry.drift_snapshot("drifty").drifted
        report = registry.refresh_if_drifted("drifty")
        assert report is not None
        assert report.num_new_records == len(scenario.drifted)
        assert registry.stats.refreshes == 1
        # The refreshed generation replaced the cached model...
        refreshed = registry.get("drifty")
        assert refreshed.model_version == 1
        # ... was written through with the bumped manifest ...
        manifest = json.loads((store / "drifty" / MANIFEST_FILENAME).read_text())
        assert manifest["model_version"] == 1
        assert manifest["lineage"]
        # ... and monitor + buffer restarted for the new generation.
        assert registry.drift_snapshot("drifty").num_records == 0
        assert registry.buffered_record_count("drifty") == 0
        # A second sweep finds nothing to do.
        assert registry.refresh_if_drifted("drifty") is None

    def test_training_records_are_not_buffered(self, drift_world):
        _, observed, fitted = drift_world
        registry = BuildingRegistry(capacity=2, config=REFRESH_CONFIG)
        registry.add_fitted("b", fitted)
        registry.label("b", list(observed)[:5])
        assert registry.buffered_record_count("b") == 0

    def test_not_drifted_building_is_left_alone(self, drift_world):
        _, observed, fitted = drift_world
        registry = BuildingRegistry(capacity=2, config=REFRESH_CONFIG)
        registry.add_fitted("b", fitted)
        registry.label("b", [list(observed)[0].without_floor()])
        assert registry.refresh_if_drifted("b") is None
        assert registry.stats.refreshes == 0

    def test_buffer_is_bounded(self, drift_world):
        scenario, _, fitted = drift_world
        policy = RefreshPolicy(buffer_size=8)
        registry = BuildingRegistry(
            capacity=2, config=REFRESH_CONFIG, refresh_policy=policy
        )
        registry.add_fitted("b", fitted)
        registry.label(
            "b", [record.without_floor() for record in scenario.drifted]
        )
        assert registry.buffered_record_count("b") == 8

    def test_explicit_refresh_with_given_records(self, drift_world):
        scenario, _, fitted = drift_world
        registry = BuildingRegistry(capacity=2, config=REFRESH_CONFIG)
        registry.add_fitted("b", fitted)
        wave = [record.without_floor() for record in list(scenario.drifted)[:10]]
        report = registry.refresh("b", records=wave, fine_tune_epochs=1)
        assert report.num_new_records == 10
        assert registry.get("b").model_version == 1

    def test_explicit_refresh_leaves_unconsumed_buffer_alone(self, drift_world):
        # A refresh over an explicit wave must not discard buffered records
        # it never trained on — they are the next refresh's material.
        scenario, _, fitted = drift_world
        registry = BuildingRegistry(capacity=2, config=REFRESH_CONFIG)
        registry.add_fitted("b", fitted)
        buffered = [record.without_floor() for record in list(scenario.drifted)[:12]]
        registry.label("b", buffered)
        assert registry.buffered_record_count("b") == 12
        explicit = buffered[:4]
        registry.refresh("b", records=explicit, fine_tune_epochs=1)
        assert registry.buffered_record_count("b") == 8

    def test_refresh_rematerializes_when_evicted_before_lock(
        self, drift_world, tmp_path
    ):
        # If the model is evicted between refresh()'s warm-up get() and the
        # building lock, the refresh must re-materialize (here: reload the
        # stored artifact) instead of refreshing a stale snapshot.
        scenario, _, fitted = drift_world

        class EvictingRegistry(BuildingRegistry):
            def get(self, building_id):
                warmed = super().get(building_id)
                with self._lock:  # simulate an LRU eviction racing the lock
                    self._cache.pop(building_id, None)
                return warmed

        registry = EvictingRegistry(
            store_dir=tmp_path / "store", capacity=1, config=REFRESH_CONFIG
        )
        registry.add_fitted("a", fitted)
        wave = [record.without_floor() for record in list(scenario.drifted)[:5]]
        loads_before = registry.stats.loads
        report = registry.refresh("a", records=wave, fine_tune_epochs=1)
        assert report.num_new_records == 5
        assert registry.stats.loads == loads_before + 1
        assert registry.get("a").model_version == 1

    def test_concurrent_refreshes_chain_instead_of_racing(self, drift_world):
        # Two overlapping refreshes must serialize on the building lock and
        # chain v0 -> v1 -> v2; neither may refresh the same stale parent
        # (the lost-update race).
        import threading

        scenario, _, fitted = drift_world
        registry = BuildingRegistry(capacity=2, config=REFRESH_CONFIG)
        registry.add_fitted("b", fitted)
        waves = [
            [
                SignalRecord(f"wave{w}-{i}", dict(record.readings))
                for i, record in enumerate(list(scenario.drifted)[:6])
            ]
            for w in range(2)
        ]
        errors = []

        def run(wave):
            try:
                registry.refresh("b", records=wave, fine_tune_epochs=1)
            except Exception as error:  # pragma: no cover - diagnostic path
                errors.append(error)

        threads = [threading.Thread(target=run, args=(wave,)) for wave in waves]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = registry.get("b")
        assert final.model_version == 2
        assert len(final.lineage) == 2
        assert registry.stats.refreshes == 2
        # Both waves' records made it into the final generation.
        for wave in waves:
            for record in wave:
                assert final.knows_record(record.record_id)


class TestFleetRefresh:
    def test_refresh_drifted_sweeps_only_drifted_buildings(
        self, drift_world, tmp_path
    ):
        scenario, observed, fitted = drift_world
        policy = RefreshPolicy(
            thresholds=DriftThresholds(
                min_records=20,
                max_unknown_mac_fraction=0.15,
                min_mean_confidence=0.0,
            ),
            min_new_records=20,
            fine_tune_epochs=1,
        )
        registry = BuildingRegistry(
            store_dir=tmp_path / "store",
            capacity=4,
            config=REFRESH_CONFIG,
            refresh_policy=policy,
        )
        registry.add_fitted("drifty", fitted)
        quiet = FisOne(REFRESH_CONFIG).fit(
            observed, observed.labeled_records[0].record_id
        )
        registry.add_fitted("quiet", quiet)

        registry.label(
            "drifty", [record.without_floor() for record in scenario.drifted]
        )
        registry.label("quiet", [list(observed)[0].without_floor()])

        server = FleetServer(registry)
        reports = server.refresh_drifted()
        assert set(reports) == {"drifty"}
        assert registry.get("drifty").model_version == 1
        assert registry.get("quiet").model_version == 0
        # Second sweep is a no-op: the refreshed monitor starts clean.
        assert server.refresh_drifted() == {}

    def test_sweep_skips_models_that_cannot_warm_start(self, drift_world):
        # A drifted building whose model carries no graph is skipped (it can
        # only be refit), not crashed on — but only that specific failure is
        # swallowed.
        import dataclasses

        scenario, _, fitted = drift_world
        slim = dataclasses.replace(fitted, graph=None)
        policy = RefreshPolicy(
            thresholds=DriftThresholds(
                min_records=10,
                max_unknown_mac_fraction=0.15,
                min_mean_confidence=0.0,
            ),
            min_new_records=10,
        )
        registry = BuildingRegistry(
            capacity=2, config=REFRESH_CONFIG, refresh_policy=policy
        )
        registry.add_fitted("slim", slim)
        registry.label(
            "slim", [record.without_floor() for record in scenario.drifted]
        )
        assert registry.drift_snapshot("slim").drifted
        assert FleetServer(registry).refresh_drifted() == {}
        assert registry.get("slim").model_version == 0


class TestDriftScenario:
    def test_scenario_shape_and_determinism(self):
        config = DriftScenarioConfig(
            building=BuildingConfig(
                num_floors=3,
                aps_per_floor=6,
                collection=CollectionConfig(
                    samples_per_floor=10, scans_per_contributor=5
                ),
            ),
            churn_fraction=0.5,
            rss_shift_db=3.0,
            post_samples_per_floor=5,
        )
        one = generate_drift_scenario(config, seed=4)
        two = generate_drift_scenario(config, seed=4)
        assert len(one.initial) == 30
        assert len(one.drifted) == 15
        assert one.replaced_macs == two.replaced_macs
        assert one.introduced_macs == two.introduced_macs
        assert [r.record_id for r in one.drifted] == [
            r.record_id for r in two.drifted
        ]
        assert len(one.replaced_macs) == round(18 * 0.5)
        assert len(one.introduced_macs) == len(one.replaced_macs)

    def test_churned_macs_partition_correctly(self):
        config = DriftScenarioConfig(
            building=BuildingConfig(
                num_floors=2,
                aps_per_floor=8,
                collection=CollectionConfig(
                    samples_per_floor=10, scans_per_contributor=5
                ),
            ),
            churn_fraction=0.25,
        )
        scenario = generate_drift_scenario(config, seed=9)
        initial_macs = scenario.initial.macs
        drifted_macs = scenario.drifted.macs
        # Replaced hardware is gone from the post wave, its successors were
        # never in the initial survey.
        assert not (scenario.replaced_macs & drifted_macs)
        assert not (scenario.introduced_macs & initial_macs)
        assert not (scenario.replaced_macs & scenario.introduced_macs)

    def test_post_records_carry_prefix_and_merge_cleanly(self):
        config = DriftScenarioConfig(
            building=BuildingConfig(
                num_floors=2,
                aps_per_floor=6,
                collection=CollectionConfig(
                    samples_per_floor=8, scans_per_contributor=4
                ),
            ),
        )
        scenario = generate_drift_scenario(config, seed=2)
        assert all(
            record.record_id.startswith(POST_DRIFT_RECORD_PREFIX)
            for record in scenario.drifted
        )
        merged = scenario.initial.merge(scenario.drifted)
        assert len(merged) == len(scenario.initial) + len(scenario.drifted)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftScenarioConfig(churn_fraction=1.5)
        with pytest.raises(ValueError):
            DriftScenarioConfig(post_samples_per_floor=0)


class TestOnlineEdgeCases:
    """Regression tests: degenerate batches must degrade, not crash."""

    def test_empty_batch_returns_empty(self, drift_world):
        _, _, fitted = drift_world
        floors, confidences, known = fitted.online_floors([])
        assert floors.shape == (0,)
        assert confidences.shape == (0,)
        assert known.shape == (0,)
        assert OnlineFloorLabeler(fitted).label([]) == []

    def test_all_unknown_batch_gets_zero_confidence_guesses(self, drift_world):
        _, _, fitted = drift_world
        records = [
            SignalRecord(f"alien-{i}", {f"ff:ff:ff:00:00:{i:02x}": -60.0})
            for i in range(4)
        ]
        labels = OnlineFloorLabeler(fitted).label(records)
        assert len(labels) == 4
        for label in labels:
            assert 0 <= label.floor < fitted.num_floors
            assert label.confidence == 0.0
            assert label.known_mac_fraction == 0.0
        # All guesses point at the same (largest) cluster's floor.
        assert len({label.floor for label in labels}) == 1

    def test_empty_batch_with_monitor_observes_nothing(self, drift_world):
        _, _, fitted = drift_world
        monitor = DriftMonitor(window=8)
        assert OnlineFloorLabeler(fitted, monitor=monitor).label([]) == []
        assert len(monitor) == 0

    def test_registry_label_empty_batch(self, drift_world):
        _, _, fitted = drift_world
        registry = BuildingRegistry(capacity=2, config=REFRESH_CONFIG)
        registry.add_fitted("b", fitted)
        assert registry.label("b", []) == []
