"""Integration tests for the end-to-end FIS-ONE pipeline and its configuration."""

import numpy as np
import pytest

from repro.core.config import FisOneConfig
from repro.core.pipeline import FisOne
from repro.gnn.model import RFGNNConfig
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.accuracy import floor_accuracy


def fast_config(**overrides) -> FisOneConfig:
    """A configuration small enough for integration tests."""
    defaults = dict(
        gnn=RFGNNConfig(embedding_dim=16, neighbor_sample_sizes=(6, 3)),
        num_epochs=2,
        max_pairs_per_epoch=6000,
        inference_passes=2,
        inference_sample_sizes=(15, 8),
    )
    defaults.update(overrides)
    return FisOneConfig(**defaults)


class TestConfig:
    def test_defaults_are_papers(self):
        config = FisOneConfig()
        assert config.clustering == "hierarchical"
        assert config.similarity == "adapted_jaccard"
        assert config.tsp_method == "exact"
        assert config.gnn.attention is True
        assert config.negatives_per_pair == 4
        assert config.walks.walk_length == 5

    def test_ablation_constructors(self):
        config = FisOneConfig()
        assert config.without_attention().gnn.attention is False
        assert config.without_attention().walks.weighted is False
        assert config.with_kmeans().clustering == "kmeans"
        assert config.with_jaccard().similarity == "jaccard"
        assert config.with_tsp_method("two_opt").tsp_method == "two_opt"
        assert config.with_embedding_dim(8).gnn.embedding_dim == 8
        assert config.with_seed(9).seed == 9

    def test_walk_weighting_follows_attention(self):
        assert FisOneConfig().walks.weighted is True
        assert FisOneConfig(gnn=RFGNNConfig(attention=False)).walks.weighted is False

    def test_validation(self):
        with pytest.raises(ValueError):
            FisOneConfig(clustering="spectral")
        with pytest.raises(ValueError):
            FisOneConfig(similarity="dice")
        with pytest.raises(ValueError):
            FisOneConfig(num_epochs=0)
        with pytest.raises(ValueError):
            FisOneConfig(inference_passes=0)
        with pytest.raises(ValueError):
            FisOneConfig(linkage="single")
        with pytest.raises(ValueError):
            FisOneConfig(inference_sample_sizes=(5,))


class TestPipeline:
    def test_end_to_end_bottom_floor(self, small_building_dataset):
        dataset = small_building_dataset
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        observed = dataset.strip_labels(keep_record_ids=[anchor])
        result = FisOne(fast_config()).fit_predict(observed, anchor, labeled_floor=0)

        assert result.floor_labels.shape == (len(dataset),)
        assert set(np.unique(result.floor_labels)) <= set(range(dataset.num_floors))
        assert result.embeddings.shape[0] == len(dataset)
        assert result.training_history.num_epochs == 2

        truth = dataset.ground_truth
        assert adjusted_rand_index(truth, result.floor_labels) > 0.4
        assert floor_accuracy(truth, result.floor_labels) > 0.4

    def test_anchor_floor_prediction_matches_label(self, small_building_dataset):
        dataset = small_building_dataset
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        observed = dataset.strip_labels(keep_record_ids=[anchor])
        result = FisOne(fast_config()).fit_predict(observed, anchor, labeled_floor=0)
        # The anchor's own cluster is by construction the bottom floor.
        assert result.predicted_floor_of(dataset, anchor) == 0

    def test_pipeline_never_reads_other_labels(self, small_building_dataset):
        """Feeding the fully labeled dataset and the stripped one gives identical output."""
        dataset = small_building_dataset
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        observed = dataset.strip_labels(keep_record_ids=[anchor])
        config = fast_config()
        labeled_result = FisOne(config).fit_predict(dataset, anchor, labeled_floor=0)
        stripped_result = FisOne(config).fit_predict(observed, anchor, labeled_floor=0)
        assert np.array_equal(labeled_result.floor_labels, stripped_result.floor_labels)

    def test_reproducible_with_same_seed(self, small_building_dataset):
        dataset = small_building_dataset
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        config = fast_config()
        a = FisOne(config).fit_predict(dataset, anchor, labeled_floor=0)
        b = FisOne(config).fit_predict(dataset, anchor, labeled_floor=0)
        assert np.array_equal(a.floor_labels, b.floor_labels)

    def test_kmeans_and_ablation_variants_run(self, small_building_dataset):
        dataset = small_building_dataset
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        for config in (
            fast_config().with_kmeans(),
            fast_config().without_attention(),
            fast_config().with_jaccard(),
            fast_config().with_tsp_method("two_opt"),
            fast_config(linkage="average"),
        ):
            result = FisOne(config).fit_predict(dataset, anchor, labeled_floor=0)
            assert result.floor_labels.shape == (len(dataset),)

    def test_arbitrary_floor_label(self, medium_building_dataset):
        dataset = medium_building_dataset  # 4 floors: floor 1 is neither bottom nor top
        anchor = dataset.pick_labeled_sample(floor=1).record_id
        result = FisOne(fast_config()).fit_predict(dataset, anchor, labeled_floor=1)
        truth = dataset.ground_truth
        assert adjusted_rand_index(truth, result.floor_labels) > 0.3

    def test_unknown_anchor_rejected(self, small_building_dataset):
        with pytest.raises(KeyError):
            FisOne(fast_config()).fit_predict(small_building_dataset, "nope", labeled_floor=0)

    def test_invalid_floor_rejected(self, small_building_dataset):
        anchor = small_building_dataset.pick_labeled_sample(floor=0).record_id
        with pytest.raises(ValueError):
            FisOne(fast_config()).fit_predict(small_building_dataset, anchor, labeled_floor=99)

    def test_floors_by_record_id(self, small_building_dataset):
        dataset = small_building_dataset
        anchor = dataset.pick_labeled_sample(floor=0).record_id
        result = FisOne(fast_config()).fit_predict(dataset, anchor, labeled_floor=0)
        mapping = result.floors_by_record_id(dataset)
        assert len(mapping) == len(dataset)
        assert mapping[anchor] == result.predicted_floor_of(dataset, anchor)
